//! Database chain consistency — Section 5.1 of the paper, Figure 14 row 5.

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text.
pub const SOURCE: &str = include_str!("../rml/db_chain.rml");

/// Parses the protocol model.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or validate (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("db_chain.rml parses");
    let errs = check_program(&p);
    assert!(errs.is_empty(), "db_chain.rml validates: {errs:?}");
    p
}

/// Clauses of a universal inductive invariant (machine-checked): the two
/// safety properties, commit/abort exclusivity, well-formedness of the
/// `depends` graph, the no-abort-after-precommit rule, and the key chain
/// property `D8`: a writer serialized between a read dependency and its
/// reader must have aborted.
pub const CLAUSES: &[(&str, &str)] = &[
    (
        "D0",
        "forall T:txn, K:key, W:txn, W2:txn. \
         ~(depends(T, K, W) & writes(W2, K) & committed(W2) \
           & txle(W, W2) & W ~= W2 & txle(W2, T) & W2 ~= T)",
    ),
    (
        "D1",
        "forall T:txn, K:key, W:txn. depends(T, K, W) -> ~aborted(W)",
    ),
    ("D2", "forall T:txn. ~(committed(T) & aborted(T))"),
    (
        "D3",
        "forall T:txn, K:key, W:txn. depends(T, K, W) -> writes(W, K)",
    ),
    (
        "D4",
        "forall T:txn, K:key, W:txn. depends(T, K, W) -> txle(W, T) & W ~= T",
    ),
    (
        "D5",
        "forall T:txn, K:key, W:txn. depends(T, K, W) -> precommitted(W, row_node(K))",
    ),
    (
        "D6",
        "forall T:txn, N:node. aborted(T) -> ~precommitted(T, N)",
    ),
    (
        "D7",
        "forall T:txn, K:key. committed(T) & (reads(T, K) | writes(T, K)) \
         -> precommitted(T, row_node(K))",
    ),
    (
        "D8",
        "forall T:txn, K:key, W:txn, W2:txn. \
         depends(T, K, W) & writes(W2, K) & txle(W, W2) & W ~= W2 \
           & txle(W2, T) & W2 ~= T \
         -> aborted(W2)",
    ),
];

/// The invariant as [`Conjecture`]s.
///
/// # Panics
///
/// Panics if an embedded formula fails to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    CLAUSES
        .iter()
        .map(|(name, src)| Conjecture::new(*name, parse_formula(src).expect("clause parses")))
        .collect()
}

/// Minimization measures a user would pick here.
pub fn measures() -> Vec<ivy_core::Measure> {
    use ivy_fol::{Sort, Sym};
    vec![
        ivy_core::Measure::SortSize(Sort::new("txn")),
        ivy_core::Measure::SortSize(Sort::new("key")),
        ivy_core::Measure::SortSize(Sort::new("node")),
        ivy_core::Measure::PositiveTuples(Sym::new("depends")),
        ivy_core::Measure::PositiveTuples(Sym::new("aborted")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Bmc, Verifier};

    #[test]
    fn model_parses_and_validates() {
        let p = program();
        assert_eq!(p.actions.len(), 4);
        assert_eq!(p.sig.sorts().len(), 3);
        assert_eq!(p.sig.symbol_count(), 9);
        assert_eq!(p.safety.len(), 2);
    }

    #[test]
    fn invariant_is_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let result = v.check(&invariant()).unwrap();
        if let ivy_core::Inductiveness::Cti(cti) = &result {
            panic!("CTI: {}\nstate: {}", cti.violation, cti.state);
        }
    }

    #[test]
    fn safety_alone_is_not_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv: Vec<_> = invariant().into_iter().take(2).collect();
        assert!(!v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn bmc_passes_bound_2() {
        let p = program();
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(2).unwrap().is_none());
    }

    #[test]
    fn buggy_variant_caught_by_bmc() {
        // Allow aborting after a precommit: dirty reads become reachable.
        let src = SOURCE.replace("assume forall N:node. ~precommitted(t, N);", "");
        let p = ivy_rml::parse_program(&src).unwrap();
        assert!(ivy_rml::check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        let trace = bmc.check_safety(3).unwrap().expect("dirty read reachable");
        assert_eq!(trace.violated, "no_dirty_reads");
    }
}
