//! Learning switch — Section 5.1 of the paper, Figure 14 row 4.

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text.
pub const SOURCE: &str = include_str!("../rml/learning_switch.rml");

/// Parses the protocol model.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or validate (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("learning_switch.rml parses");
    let errs = check_program(&p);
    assert!(errs.is_empty(), "learning_switch.rml validates: {errs:?}");
    p
}

/// Clauses of a universal inductive invariant (machine-checked): `A0` is
/// safety (antisymmetry); `A1`–`A3` keep `route_tc` a reflexive, transitive,
/// per-source-linear closure; `A4`–`A5` tie routes to learned entries;
/// `A6`–`A7` say a pending packet's previous hop has a complete route back
/// to the packet's source.
pub const CLAUSES: &[(&str, &str)] = &[
    (
        "A0",
        "forall PS:node, X:node, Y:node. route_tc(PS, X, Y) & route_tc(PS, Y, X) -> X = Y",
    ),
    ("A1", "forall PS:node, X:node. route_tc(PS, X, X)"),
    (
        "A2",
        "forall PS:node, X:node, Y:node, Z:node. \
         route_tc(PS, X, Y) & route_tc(PS, Y, Z) -> route_tc(PS, X, Z)",
    ),
    (
        "A3",
        "forall PS:node, X:node, Y:node, Z:node. \
         route_tc(PS, X, Y) & route_tc(PS, X, Z) -> route_tc(PS, Y, Z) | route_tc(PS, Z, Y)",
    ),
    (
        "A4",
        "forall PS:node, X:node, Y:node. route_tc(PS, X, Y) & X ~= Y -> route_dom(PS, X)",
    ),
    (
        "A5",
        "forall PS:node, X:node, Y:node. \
         route_tc(PS, X, Y) & X ~= Y & Y ~= PS -> route_dom(PS, Y)",
    ),
    (
        "A6",
        "forall P:packet, X:node, Y:node. \
         pend(P, X, Y) & X ~= psrc(P) -> route_dom(psrc(P), X)",
    ),
    (
        "A7",
        "forall PS:node, X:node. route_dom(PS, X) -> route_tc(PS, X, PS)",
    ),
];

/// The invariant as [`Conjecture`]s.
///
/// # Panics
///
/// Panics if an embedded formula fails to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    CLAUSES
        .iter()
        .map(|(name, src)| Conjecture::new(*name, parse_formula(src).expect("clause parses")))
        .collect()
}

/// Minimization measures a user would pick here.
pub fn measures() -> Vec<ivy_core::Measure> {
    use ivy_fol::{Sort, Sym};
    // Sort-size minimization of `node` interacts badly with the ternary
    // route_tc relation (cardinality constraints merge the whole universe);
    // a user of this protocol minimizes the relations instead (the paper
    // leaves the choice of measures to the user, Section 4.3).
    vec![
        ivy_core::Measure::SortSize(Sort::new("packet")),
        ivy_core::Measure::PositiveTuples(Sym::new("pend")),
        ivy_core::Measure::PositiveTuples(Sym::new("route_dom")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Bmc, Verifier};

    #[test]
    fn model_parses_and_validates() {
        let p = program();
        assert_eq!(p.actions.len(), 2);
        // Figure 14: S = 2; RF counts our 6 symbols (paper reports 5 on a
        // slightly coarser model).
        assert_eq!(p.sig.sorts().len(), 2);
        assert_eq!(p.sig.symbol_count(), 6);
    }

    #[test]
    fn invariant_is_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let result = v.check(&invariant()).unwrap();
        if let ivy_core::Inductiveness::Cti(cti) = &result {
            panic!("CTI: {}\nstate: {}", cti.violation, cti.state);
        }
    }

    #[test]
    fn safety_alone_is_not_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv = vec![invariant().remove(0)];
        assert!(!v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn bmc_passes_bound_2() {
        let p = program();
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(2).unwrap().is_none());
    }
}
