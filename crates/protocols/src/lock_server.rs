//! Lock server (Verdi) — Section 5.1 of the paper, Figure 14 row 2.

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text.
pub const SOURCE: &str = include_str!("../rml/lock_server.rml");

/// Parses the protocol model.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or validate (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("lock_server.rml parses");
    let errs = check_program(&p);
    assert!(errs.is_empty(), "lock_server.rml validates: {errs:?}");
    p
}

/// The clauses of a universal inductive invariant, machine-checked by the
/// tests. `L0` is the safety property; `L1`–`L5` make the lock token
/// (grant message / held lock / unlock message) unique and exclusive;
/// `L6`–`L7` tie tokens to the server's bookkeeping; `L8`–`L9` keep the
/// queue functional.
pub const CLAUSES: &[(&str, &str)] = &[
    (
        "L0",
        "forall C1:client, C2:client. holds(C1) & holds(C2) -> C1 = C2",
    ),
    (
        "L1",
        "forall C1:client, C2:client. grant_msg(C1) & grant_msg(C2) -> C1 = C2",
    ),
    (
        "L2",
        "forall C1:client, C2:client. unlock_msg(C1) & unlock_msg(C2) -> C1 = C2",
    ),
    (
        "L3",
        "forall C1:client, C2:client. ~(holds(C1) & grant_msg(C2))",
    ),
    (
        "L4",
        "forall C1:client, C2:client. ~(holds(C1) & unlock_msg(C2))",
    ),
    (
        "L5",
        "forall C1:client, C2:client. ~(grant_msg(C1) & unlock_msg(C2))",
    ),
    (
        "L6",
        "forall C:client. holds(C) | grant_msg(C) | unlock_msg(C) -> busy",
    ),
    (
        "L7",
        "forall C:client. holds(C) | grant_msg(C) | unlock_msg(C) -> queued(cur, C)",
    ),
    (
        "L8",
        "forall S:seqn, C1:client, C2:client. queued(S, C1) & queued(S, C2) -> C1 = C2",
    ),
    ("L9", "forall S:seqn, C:client. queued(S, C) -> used(S)"),
];

/// The invariant as [`Conjecture`]s.
///
/// # Panics
///
/// Panics if an embedded formula fails to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    CLAUSES
        .iter()
        .map(|(name, src)| Conjecture::new(*name, parse_formula(src).expect("clause parses")))
        .collect()
}

/// Minimization measures a user would pick here.
pub fn measures() -> Vec<ivy_core::Measure> {
    use ivy_fol::{Sort, Sym};
    vec![
        ivy_core::Measure::SortSize(Sort::new("client")),
        ivy_core::Measure::SortSize(Sort::new("seqn")),
        ivy_core::Measure::PositiveTuples(Sym::new("queued")),
        ivy_core::Measure::PositiveTuples(Sym::new("grant_msg")),
        ivy_core::Measure::PositiveTuples(Sym::new("unlock_msg")),
        ivy_core::Measure::PositiveTuples(Sym::new("holds")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Bmc, Verifier};

    #[test]
    fn model_parses_and_validates() {
        let p = program();
        assert_eq!(p.actions.len(), 5);
        assert_eq!(p.sig.sorts().len(), 2);
    }

    #[test]
    fn invariant_is_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let result = v.check(&invariant()).unwrap();
        if let ivy_core::Inductiveness::Cti(cti) = &result {
            panic!("CTI: {}\nstate: {}", cti.violation, cti.state);
        }
    }

    #[test]
    fn safety_alone_is_not_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv = vec![invariant().remove(0)];
        assert!(!v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn bmc_passes_bound_3() {
        let p = program();
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(3).unwrap().is_none());
    }

    #[test]
    fn buggy_variant_caught_by_bmc() {
        // Drop the mutual-exclusion bookkeeping: grant on every request.
        let src = SOURCE.replace("if ~busy {", "if ~busy | busy {");
        let p = ivy_rml::parse_program(&src).unwrap();
        assert!(ivy_rml::check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        let trace = bmc
            .check_safety(6)
            .unwrap()
            .expect("double grant reachable");
        assert_eq!(trace.violated, "mutual_exclusion");
    }
}
