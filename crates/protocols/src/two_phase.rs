//! Epoch-based two-phase commit — a deliberately *non-EPR* protocol.
//!
//! `next : epoch -> epoch` breaks stratification (the sort cycle is
//! `epoch -> epoch`, closed by `next` itself), and the invariant's
//! abort-witness clause `C3` is a genuine `∀∃` formula. Full
//! instantiation refuses the model with a cycle-naming diagnostic;
//! bounded instantiation ([`ivy_epr::InstantiationMode::Bounded`])
//! proves the invariant inductive at depth 2 — every inductiveness
//! query is refuted within a shallow term universe, and refutations
//! under a bound are sound (the bounded clause set is a subset of the
//! full instantiation).

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text.
pub const SOURCE: &str = include_str!("../rml/two_phase.rml");

/// Parses the protocol model. Unlike the EPR protocols, validation is
/// expected to report *fragment* problems (the `next` stratification
/// cycle) — those are tolerated; anything harder is a build bug.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or has non-fragment
/// validation problems (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("two_phase.rml parses");
    let hard: Vec<_> = check_program(&p)
        .into_iter()
        .filter(|e| !e.is_fragment())
        .collect();
    assert!(hard.is_empty(), "two_phase.rml validates: {hard:?}");
    p
}

/// Clauses of the inductive invariant (machine-checked under bounded
/// instantiation): `C0` is safety; `C1` makes votes and refusals
/// exclusive; `C2`–`C4` tie decisions to the ballot; `C5`–`C6` justify
/// applied decisions. `C3` is the `∀∃` clause — every aborted round has
/// a refusing witness — and it is load-bearing: `decide_commit` has no
/// `~abort(cur)` guard, so `C4`'s preservation needs the witness.
pub const CLAUSES: &[(&str, &str)] = &[
    (
        "C0",
        "forall N1:node, N2:node, E:epoch. ~(committed(N1, E) & aborted(N2, E))",
    ),
    (
        "C1",
        "forall N:node, E:epoch. ~(voted(N, E) & refused(N, E))",
    ),
    ("C2", "forall N:node, E:epoch. ~(go(E) & refused(N, E))"),
    (
        "C3",
        "forall E:epoch. cancel(E) -> (exists N:node. refused(N, E))",
    ),
    ("C4", "forall E:epoch. ~(go(E) & cancel(E))"),
    ("C5", "forall N:node, E:epoch. committed(N, E) -> go(E)"),
    ("C6", "forall N:node, E:epoch. aborted(N, E) -> cancel(E)"),
];

/// The invariant as [`Conjecture`]s.
///
/// # Panics
///
/// Panics if an embedded formula fails to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    CLAUSES
        .iter()
        .map(|(name, src)| Conjecture::new(*name, parse_formula(src).expect("clause parses")))
        .collect()
}

/// The instantiation depth at which the invariant proves: deep enough
/// for the Skolem witness `sk(E)` of `C3` and one `next` application.
pub const PROVE_BOUND: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Oracle, Verifier};
    use ivy_epr::{EprError, InstantiationMode, StopReason};
    use std::sync::Arc;

    fn bounded_oracle(depth: usize) -> Arc<Oracle> {
        let mut oracle = Oracle::new();
        oracle.set_mode(InstantiationMode::Bounded(depth));
        Arc::new(oracle)
    }

    #[test]
    fn model_is_outside_epr_but_only_by_fragment_problems() {
        let p = program();
        let problems = check_program(&p);
        assert!(
            !problems.is_empty(),
            "two_phase is supposed to sit outside EPR"
        );
        assert!(problems.iter().all(|e| e.is_fragment()));
        // The diagnostic names the cycle-closing function.
        let strat = p.sig.analyze_stratification();
        assert!(!strat.is_stratified());
        assert!(strat.edges.iter().any(|e| e.function.as_str() == "next"));
    }

    #[test]
    fn full_mode_refuses_with_a_cycle_naming_diagnostic() {
        let p = program();
        let v = Verifier::new(&p);
        let err = v.check(&invariant()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("not stratified") && msg.contains("epoch"),
            "expected a cycle-naming stratification error, got: {msg}"
        );
    }

    #[test]
    fn invariant_is_inductive_under_bounded_instantiation() {
        let p = program();
        let v = Verifier::with_oracle(&p, bounded_oracle(PROVE_BOUND));
        let result = v.check(&invariant()).unwrap();
        if let ivy_core::Inductiveness::Cti(cti) = &result {
            panic!("CTI: {}\nstate: {}", cti.violation, cti.state);
        }
    }

    #[test]
    fn deeper_bound_cross_checks_the_verdict() {
        let p = program();
        let v = Verifier::with_oracle(&p, bounded_oracle(PROVE_BOUND + 1));
        assert!(v.check(&invariant()).unwrap().is_inductive());
    }

    #[test]
    fn dropping_the_witness_clause_degrades_to_unknown_not_a_verdict() {
        // Without C3 the bounded check cannot refute a commit of an
        // aborted round; the residual SAT answer leaned on the bound
        // (the epoch universe is truncated by `next`), so the engine
        // must answer Inconclusive — not "inductive", and not a CTI.
        let p = program();
        let inv: Vec<Conjecture> = invariant().into_iter().filter(|c| c.name != "C3").collect();
        let v = Verifier::with_oracle(&p, bounded_oracle(PROVE_BOUND));
        match v.check(&inv) {
            Err(EprError::Inconclusive(StopReason::BoundReached)) => {}
            other => panic!("expected Inconclusive(BoundReached), got {other:?}"),
        }
    }
}
