//! Distributed lock protocol (IronFleet) — Section 5.1 of the paper,
//! Figure 14 row 3.

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text.
pub const SOURCE: &str = include_str!("../rml/distributed_lock.rml");

/// Parses the protocol model.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or validate (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("distributed_lock.rml parses");
    let errs = check_program(&p);
    assert!(errs.is_empty(), "distributed_lock.rml validates: {errs:?}");
    p
}

/// Clauses of a universal inductive invariant (machine-checked): `J0` is
/// safety; `J1`–`J2` make locked messages justified by unique transfers;
/// `J3`–`J5` say the holder dominates everything; `J6a`–`J6c` constrain the
/// unique in-flight ("fresh") transfer when no one holds the lock.
pub const CLAUSES: &[(&str, &str)] = &[
    (
        "J0",
        "forall E:epoch, N1:node, N2:node. locked(E, N1) & locked(E, N2) -> N1 = N2",
    ),
    (
        "J1",
        "forall E:epoch, N:node. locked(E, N) -> transfer(E, N)",
    ),
    (
        "J2",
        "forall E:epoch, N1:node, N2:node. transfer(E, N1) & transfer(E, N2) -> N1 = N2",
    ),
    (
        "J3",
        "forall E:epoch, N:node, M:node. held(N) & transfer(E, M) -> le(E, ep(N))",
    ),
    ("J4", "forall N:node, M:node. held(N) -> le(ep(M), ep(N))"),
    (
        "J5",
        "forall N1:node, N2:node. held(N1) & held(N2) -> N1 = N2",
    ),
    (
        "J6a",
        "forall E:epoch, N:node, M:node. transfer(E, N) & ~le(E, ep(N)) -> ~held(M)",
    ),
    (
        "J6b",
        "forall E:epoch, N:node, E2:epoch, N2:node. \
         transfer(E, N) & ~le(E, ep(N)) & transfer(E2, N2) -> le(E2, E)",
    ),
    (
        "J6c",
        "forall E:epoch, N:node, M:node. transfer(E, N) & ~le(E, ep(N)) -> le(ep(M), E)",
    ),
];

/// The invariant as [`Conjecture`]s.
///
/// # Panics
///
/// Panics if an embedded formula fails to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    CLAUSES
        .iter()
        .map(|(name, src)| Conjecture::new(*name, parse_formula(src).expect("clause parses")))
        .collect()
}

/// Minimization measures a user would pick here.
pub fn measures() -> Vec<ivy_core::Measure> {
    use ivy_fol::{Sort, Sym};
    vec![
        ivy_core::Measure::SortSize(Sort::new("node")),
        ivy_core::Measure::SortSize(Sort::new("epoch")),
        ivy_core::Measure::PositiveTuples(Sym::new("transfer")),
        ivy_core::Measure::PositiveTuples(Sym::new("locked")),
        ivy_core::Measure::PositiveTuples(Sym::new("held")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Bmc, Verifier};

    #[test]
    fn model_parses_and_validates() {
        let p = program();
        assert_eq!(p.actions.len(), 2);
        // Figure 14: S = 2, RF = 5 (le, held, transfer, locked, ep).
        assert_eq!(p.sig.sorts().len(), 2);
        assert_eq!(p.sig.symbol_count(), 5);
    }

    #[test]
    fn invariant_is_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let result = v.check(&invariant()).unwrap();
        if let ivy_core::Inductiveness::Cti(cti) = &result {
            panic!("CTI: {}\nstate: {}", cti.violation, cti.state);
        }
    }

    #[test]
    fn safety_alone_is_not_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv = vec![invariant().remove(0)];
        assert!(!v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn bmc_passes_bound_3() {
        let p = program();
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(3).unwrap().is_none());
    }

    #[test]
    fn buggy_variant_caught_by_bmc() {
        // Forget to require a strictly larger epoch when transferring: two
        // transfers can then carry the same epoch to different nodes.
        let src = SOURCE.replace(
            "assume le(ep(src), e) & e ~= ep(src);",
            "assume le(ep(src), e);",
        );
        let p = ivy_rml::parse_program(&src).unwrap();
        assert!(ivy_rml::check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        let trace = bmc
            .check_safety(4)
            .unwrap()
            .expect("same-epoch double lock reachable");
        assert_eq!(trace.violated, "locked_unique");
    }
}
