//! The six distributed protocols of the Ivy paper's evaluation (Section 5),
//! modeled in RML with machine-checked universal inductive invariants —
//! plus [`two_phase`], a deliberately non-EPR protocol whose invariant is
//! proved under bounded quantifier instantiation.
#![warn(missing_docs)]

pub mod chord;
pub mod db_chain;
pub mod distributed_lock;
pub mod leader;
pub mod learning_switch;
pub mod lock_server;
pub mod two_phase;
