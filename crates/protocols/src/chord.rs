//! Chord ring maintenance — Section 5.1 of the paper, Figure 14 row 6.

use ivy_core::Conjecture;
use ivy_fol::parse_formula;
use ivy_rml::{check_program, parse_program, Program};

/// The RML source text.
pub const SOURCE: &str = include_str!("../rml/chord.rml");

/// Parses the protocol model.
///
/// # Panics
///
/// Panics if the embedded source fails to parse or validate (a build bug).
pub fn program() -> Program {
    let p = parse_program(SOURCE).expect("chord.rml parses");
    let errs = check_program(&p);
    assert!(errs.is_empty(), "chord.rml validates: {errs:?}");
    p
}

/// Clauses of a universal inductive invariant (machine-checked): `K0` is
/// the ordered-ring safety property (the universal surrogate for Zave's
/// transitive-closure connectivity); `K1`–`K4` keep `succ` a function from
/// members to members with ring members pointing into the ring.
pub const CLAUSES: &[(&str, &str)] = &[
    (
        "K0",
        "forall X:node, Y:node, Z:node. \
         in_ring(X) & succ(X, Y) & in_ring(Z) & Z ~= X & Z ~= Y -> ~btw(X, Z, Y)",
    ),
    (
        "K1",
        "forall X:node, Y:node, Z:node. succ(X, Y) & succ(X, Z) -> Y = Z",
    ),
    (
        "K2",
        "forall X:node, Y:node. succ(X, Y) -> member(X) & member(Y)",
    ),
    ("K3", "forall X:node. in_ring(X) -> member(X)"),
    (
        "K4",
        "forall X:node, Y:node. in_ring(X) & succ(X, Y) -> in_ring(Y)",
    ),
];

/// The invariant as [`Conjecture`]s.
///
/// # Panics
///
/// Panics if an embedded formula fails to parse (a build bug).
pub fn invariant() -> Vec<Conjecture> {
    CLAUSES
        .iter()
        .map(|(name, src)| Conjecture::new(*name, parse_formula(src).expect("clause parses")))
        .collect()
}

/// Minimization measures a user would pick here.
pub fn measures() -> Vec<ivy_core::Measure> {
    use ivy_fol::{Sort, Sym};
    vec![
        ivy_core::Measure::SortSize(Sort::new("node")),
        ivy_core::Measure::PositiveTuples(Sym::new("succ")),
        ivy_core::Measure::PositiveTuples(Sym::new("member")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_core::{Bmc, Verifier};

    #[test]
    fn model_parses_and_validates() {
        let p = program();
        assert_eq!(p.actions.len(), 2);
        // S = 1 as in Figure 14 (a single identifier/node sort).
        assert_eq!(p.sig.sorts().len(), 1);
    }

    #[test]
    fn invariant_is_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let result = v.check(&invariant()).unwrap();
        if let ivy_core::Inductiveness::Cti(cti) = &result {
            panic!("CTI: {}\nstate: {}", cti.violation, cti.state);
        }
    }

    #[test]
    fn safety_alone_is_not_inductive() {
        let p = program();
        let v = Verifier::new(&p);
        let inv = vec![invariant().remove(0)];
        assert!(!v.check(&inv).unwrap().is_inductive());
    }

    #[test]
    fn bmc_passes_bound_2() {
        let p = program();
        let bmc = Bmc::new(&p);
        assert!(bmc.check_safety(2).unwrap().is_none());
    }

    #[test]
    fn buggy_variant_caught_by_bmc() {
        // Let nodes join pointing at an arbitrary member, and splice without
        // checking the appendage's own pointer: a freshly spliced node can
        // then bypass a ring member within two steps (join, stabilize).
        let src = SOURCE
            .replace(
                "assume forall Z:node. member(Z) & Z ~= n & Z ~= m -> ~btw(n, Z, m);",
                "",
            )
            .replace(
                "assume member(j) & ~in_ring(j) & succ(j, m) & btw(p, j, m);",
                "assume member(j) & ~in_ring(j) & btw(p, j, m);",
            );
        let p = ivy_rml::parse_program(&src).unwrap();
        assert!(ivy_rml::check_program(&p).is_empty());
        let bmc = Bmc::new(&p);
        let trace = bmc
            .check_safety(2)
            .unwrap()
            .expect("bypass reachable in 2 steps");
        assert_eq!(trace.violated, "ordered_ring");
    }
}
