//! Every shipped protocol model survives a render → reparse round trip
//! with identical declarations, axioms, safety properties, and execution
//! paths per action.

use ivy_protocols as p;
use ivy_rml::{check_program, parse_program, paths, render_program, Program};

fn roundtrip(name: &str, p1: &Program) {
    let text = render_program(p1);
    let p2 =
        parse_program(&text).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n---\n{text}"));
    let problems = check_program(&p2);
    assert!(problems.is_empty(), "{name}: {problems:?}");
    assert_eq!(p1.sig, p2.sig, "{name}: signature");
    assert_eq!(p1.axioms, p2.axioms, "{name}: axioms");
    assert_eq!(p1.safety, p2.safety, "{name}: safety");
    assert_eq!(p1.locals, p2.locals, "{name}: locals");
    assert_eq!(paths(&p1.init), paths(&p2.init), "{name}: init");
    assert_eq!(p1.actions.len(), p2.actions.len(), "{name}: action count");
    for (a1, a2) in p1.actions.iter().zip(&p2.actions) {
        assert_eq!(a1.name, a2.name, "{name}: action order");
        assert_eq!(
            paths(&a1.cmd),
            paths(&a2.cmd),
            "{name}: action `{}` paths",
            a1.name
        );
    }
}

#[test]
fn all_protocols_roundtrip() {
    roundtrip("leader", &p::leader::program());
    roundtrip("lock_server", &p::lock_server::program());
    roundtrip("distributed_lock", &p::distributed_lock::program());
    roundtrip("learning_switch", &p::learning_switch::program());
    roundtrip("db_chain", &p::db_chain::program());
    roundtrip("chord", &p::chord::program());
}
