//! Reproduction of the paper's interactive leader-election session
//! (Section 2.3, Figures 7–9): three CTI + generalization iterations
//! yielding an invariant equivalent to C0 ∧ C1 ∧ C2 ∧ C3 of Figure 6.

use ivy_core::{OracleUser, Session, SessionOutcome, Verifier};
use ivy_fol::parse_formula;
use ivy_protocols::leader;

fn initial() -> Vec<ivy_core::Conjecture> {
    vec![ivy_core::Conjecture::new(
        "C0",
        parse_formula(leader::C0).unwrap(),
    )]
}

fn assert_equivalent_to_paper(program: &ivy_rml::Program, session: &Session<'_>) {
    let v = Verifier::new(program);
    assert!(v.check(session.conjectures()).unwrap().is_inductive());
    let axioms = program.axiom();
    let target: Vec<_> = leader::invariant().into_iter().map(|c| c.formula).collect();
    let found: Vec<_> = session
        .conjectures()
        .iter()
        .map(|c| c.formula.clone())
        .collect();
    for c in session.conjectures() {
        assert!(
            ivy_core::implied(&program.sig, &axioms, &target, &c.formula).unwrap(),
            "{c} is not implied by the paper's invariant"
        );
    }
    for phi in &target {
        assert!(
            ivy_core::implied(&program.sig, &axioms, &found, phi).unwrap(),
            "paper conjecture {phi} not implied by the found invariant"
        );
    }
}

/// The oracle user (ideal human knowing the Figure 6 invariant) completes
/// the session; the number of CTIs matches the paper's G = 3.
#[test]
fn oracle_session_reproduces_figure6() {
    let program = leader::program();
    let target: Vec<_> = leader::invariant().into_iter().map(|c| c.formula).collect();
    let mut session = Session::new(&program, initial(), leader::measures());
    let mut user = OracleUser::new(target, 3);
    let outcome = session.run(&mut user, 12).unwrap();
    assert_eq!(outcome, SessionOutcome::Proved);
    assert_eq!(
        session.stats().ctis,
        3,
        "paper's Figure 14 reports G = 3 for leader election; got {:?}",
        session.stats()
    );
    assert_equivalent_to_paper(&program, &session);
}

/// Scripted re-enactment of the user moves of Figures 7–9 (coarse
/// generalizations + BMC + Auto Generalize with bound 3).
#[test]
fn scripted_session_follows_figures_7_to_9() {
    let program = leader::program();
    let mut session = Session::new(&program, initial(), leader::measures());
    let mut user = leader::paper_user(3);
    let outcome = session.run(&mut user, 6).unwrap();
    assert_eq!(
        outcome,
        SessionOutcome::Proved,
        "stats: {:?}",
        session.stats()
    );
    assert_eq!(session.stats().ctis, 3, "three iterations as in the paper");
    assert_eq!(session.conjectures().len(), 4, "C0 plus three conjectures");
    assert_equivalent_to_paper(&program, &session);

    // The paper reports I = 12 literals for the final invariant; our
    // diagram-based conjectures carry explicit idf facts, landing close by.
    let literals: usize = session
        .conjectures()
        .iter()
        .map(|c| c.formula.literal_count())
        .sum();
    assert!(
        (12..=30).contains(&literals),
        "literal count {literals} out of the expected regime"
    );
}
