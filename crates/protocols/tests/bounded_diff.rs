//! Differential suite: bounded instantiation at sufficient depth must
//! agree with full instantiation on every bundled EPR protocol.
//!
//! For a stratified signature the ground-term universe is finite; once
//! the depth bound exceeds its closure the bounded clause set *is* the
//! full clause set, nothing is truncated or skipped, and every verdict —
//! inductive and CTI alike — must be bit-for-bit the same answer the
//! full pipeline gives. Any divergence is a soundness bug in the
//! bounded pipeline, so this suite runs both modes over all six
//! protocols, with cold (per-check) and warm (pooled, repeated) oracles.
//!
//! The non-EPR `two_phase` protocol closes the loop the other way: full
//! mode must refuse it with a cycle-naming diagnostic, bounded mode must
//! prove it.

use std::sync::Arc;

use ivy_core::{Conjecture, Inductiveness, Oracle, Verifier};
use ivy_epr::InstantiationMode;
use ivy_protocols::{
    chord, db_chain, distributed_lock, leader, learning_switch, lock_server, two_phase,
};
use ivy_rml::Program;

/// Deep enough that every stratified protocol's term universe closes
/// below the bound (function nesting in the six models is at most 2).
const SUFFICIENT_DEPTH: usize = 4;

fn protocols() -> Vec<(&'static str, Program, Vec<Conjecture>)> {
    vec![
        ("leader", leader::program(), leader::invariant()),
        (
            "lock_server",
            lock_server::program(),
            lock_server::invariant(),
        ),
        (
            "learning_switch",
            learning_switch::program(),
            learning_switch::invariant(),
        ),
        ("db_chain", db_chain::program(), db_chain::invariant()),
        (
            "distributed_lock",
            distributed_lock::program(),
            distributed_lock::invariant(),
        ),
        ("chord", chord::program(), chord::invariant()),
    ]
}

fn oracle(mode: InstantiationMode) -> Arc<Oracle> {
    let mut o = Oracle::new();
    o.set_mode(mode);
    Arc::new(o)
}

/// A comparable verdict: CTI states may legitimately differ between
/// equal clause sets enumerated in different orders, but the verdict
/// kind and the violated conjecture may not.
fn verdict_tag(r: &Inductiveness) -> String {
    match r {
        Inductiveness::Inductive => "inductive".to_string(),
        Inductiveness::Cti(cti) => format!("cti:{}", cti.violation),
    }
}

#[test]
fn bounded_matches_full_on_all_protocols_cold_oracle() {
    for (name, program, invariant) in protocols() {
        for inv in [&invariant, &invariant[..1].to_vec()] {
            let full = Verifier::with_oracle(&program, oracle(InstantiationMode::Full))
                .check(inv)
                .unwrap_or_else(|e| panic!("{name}: full mode errored: {e}"));
            let bounded = Verifier::with_oracle(
                &program,
                oracle(InstantiationMode::Bounded(SUFFICIENT_DEPTH)),
            )
            .check(inv)
            .unwrap_or_else(|e| panic!("{name}: bounded mode errored: {e}"));
            assert_eq!(
                verdict_tag(&full),
                verdict_tag(&bounded),
                "{name}: bounded diverged from full on {} conjecture(s)",
                inv.len()
            );
        }
    }
}

#[test]
fn bounded_matches_full_on_all_protocols_warm_oracle() {
    // One pooled oracle per mode, shared across all protocols and
    // queried twice each: the second pass answers from warm frame-keyed
    // sessions and must not change a single verdict.
    let full_oracle = oracle(InstantiationMode::Full);
    let bounded_oracle = oracle(InstantiationMode::Bounded(SUFFICIENT_DEPTH));
    for pass in 0..2 {
        for (name, program, invariant) in protocols() {
            let full = Verifier::with_oracle(&program, full_oracle.clone())
                .check(&invariant)
                .unwrap_or_else(|e| panic!("{name} pass {pass}: full mode errored: {e}"));
            let bounded = Verifier::with_oracle(&program, bounded_oracle.clone())
                .check(&invariant)
                .unwrap_or_else(|e| panic!("{name} pass {pass}: bounded mode errored: {e}"));
            assert_eq!(
                verdict_tag(&full),
                verdict_tag(&bounded),
                "{name} pass {pass}: warm bounded diverged from full"
            );
        }
    }
}

#[test]
fn two_phase_is_refused_by_full_and_proved_by_bounded() {
    let program = two_phase::program();
    let invariant = two_phase::invariant();
    let err = Verifier::with_oracle(&program, oracle(InstantiationMode::Full))
        .check(&invariant)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("not stratified") && msg.contains("epoch"),
        "full mode should name the cycle, got: {msg}"
    );
    let verdict = Verifier::with_oracle(
        &program,
        oracle(InstantiationMode::Bounded(two_phase::PROVE_BOUND)),
    )
    .check(&invariant)
    .unwrap();
    assert!(
        verdict.is_inductive(),
        "bounded mode should prove two_phase"
    );
}
