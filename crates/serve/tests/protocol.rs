//! Wire-protocol conformance: every failure mode produces a well-formed
//! error response and never wedges a worker.
//!
//! Most tests drive [`Server::handle_line`] directly — the dispatch core
//! is transport-agnostic — with a handful of socket-level tests for the
//! behaviors that only exist at the stream layer (oversized lines,
//! mid-request disconnects, busy rejection under real concurrency).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use ivy_serve::{Client, Endpoint, Json, Listener, ServeConfig, Server};

const MODEL: &str = r#"
sort client
relation has_lock : client
relation lock_free
local c : client
safety mutex: forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2
init { has_lock(X0) := false; lock_free() := true }
action acquire { havoc c; assume lock_free; lock_free() := false; has_lock.insert(c) }
action release { havoc c; assume has_lock(c); has_lock.remove(c); lock_free() := true }
"#;

const INVARIANT: &str = "\
mutex: forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2
excl: forall C:client. has_lock(C) -> ~lock_free
";

fn server() -> Server {
    Server::new(ServeConfig::default())
}

fn request(fields: &[(&str, &str)]) -> String {
    let mut obj = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            obj.push(',');
        }
        obj.push_str(&format!("{:?}:{v}", k));
    }
    obj.push('}');
    obj
}

fn json_field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("response missing `{key}`: {resp}"))
}

/// Parses a response line and asserts the envelope invariants every
/// response must satisfy: single line, valid JSON object, `ok` bool,
/// echoed `id`.
fn check_envelope(line: &str) -> Json {
    assert!(line.ends_with('\n'), "response must be newline-terminated");
    let body = line.trim_end_matches('\n');
    assert!(!body.contains('\n'), "response must be a single line");
    let parsed =
        Json::parse(body).unwrap_or_else(|e| panic!("invalid response JSON ({e}): {body}"));
    assert!(parsed.get("ok").and_then(Json::as_bool).is_some(), "{body}");
    parsed
}

fn error_code(resp: &Json) -> String {
    json_field(resp, "error")
        .get("code")
        .and_then(Json::as_str)
        .expect("error.code")
        .to_string()
}

#[test]
fn malformed_json_yields_parse_error() {
    let s = server();
    for line in [
        "{not json",
        "]",
        "{\"cmd\": \"verify\"",           // truncated
        "{\"cmd\": \"verify\"} trailing", // trailing garbage
        "\u{1}",                          // control byte
        "[1,2,3]",                        // valid JSON, not an object
    ] {
        let handled = s.handle_line(line);
        let resp = check_envelope(&handled.response);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        let code = error_code(&resp);
        assert!(
            code == "parse" || code == "protocol",
            "line {line:?} gave code {code}"
        );
        assert!(!handled.close, "a parse error should not close the stream");
    }
}

#[test]
fn unknown_command_yields_protocol_error_with_id_echo() {
    let s = server();
    let handled = s.handle_line(r#"{"id": 42, "cmd": "frobnicate"}"#);
    let resp = check_envelope(&handled.response);
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(42));
    assert_eq!(error_code(&resp), "protocol");
}

#[test]
fn missing_model_yields_protocol_error() {
    let s = server();
    let handled = s.handle_line(r#"{"id": "x", "cmd": "verify"}"#);
    let resp = check_envelope(&handled.response);
    assert_eq!(error_code(&resp), "protocol");
}

#[test]
fn invalid_model_yields_model_error() {
    let s = server();
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", "\"sort s\\nrelation r : missing\""),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(error_code(&resp), "model");
}

#[test]
fn verify_inductive_with_cache_and_profile_blocks() {
    let s = server();
    let model = Json::str(MODEL).to_string();
    let inv = Json::str(INVARIANT).to_string();
    let req = request(&[
        ("id", "\"r1\""),
        ("cmd", "\"verify\""),
        ("model", &model),
        ("invariant", &inv),
    ]);

    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(
        resp.get("verdict").and_then(Json::as_str),
        Some("inductive")
    );
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("r1"));
    // The telemetry contract: every response carries an ivy-profile-v1
    // block and cache provenance.
    let profile = json_field(&resp, "profile");
    assert_eq!(
        profile.get("schema").and_then(Json::as_str),
        Some("ivy-profile-v1")
    );
    let cache = json_field(&resp, "cache");
    let miss1 = cache.get("frame_misses").and_then(Json::as_u64).unwrap();
    assert!(miss1 > 0, "a cold verify must build sessions: {resp}");

    // The same frames again: served warm from the shared pool.
    let resp = check_envelope(&s.handle_line(&req).response);
    let cache = json_field(&resp, "cache");
    assert_eq!(
        cache.get("frame_misses").and_then(Json::as_u64),
        Some(0),
        "second identical request must be all warm: {resp}"
    );
    assert!(cache.get("frame_hits").and_then(Json::as_u64).unwrap() > 0);
}

#[test]
fn verify_unstrengthened_safety_yields_cti() {
    let s = server();
    let model = Json::str(MODEL).to_string();
    let req = request(&[("cmd", "\"verify\""), ("model", &model)]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("verdict").and_then(Json::as_str), Some("cti"));
    assert!(resp.get("state").and_then(Json::as_str).is_some(), "{resp}");
}

#[test]
fn bmc_and_houdini_and_generalize_roundtrip() {
    let s = server();
    let model = Json::str(MODEL).to_string();

    let req = request(&[("cmd", "\"bmc\""), ("model", &model), ("depth", "2")]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(
        resp.get("verdict").and_then(Json::as_str),
        Some("safe"),
        "{resp}"
    );

    let req = request(&[
        ("cmd", "\"houdini\""),
        ("model", &model),
        ("vars", "1"),
        ("lits", "1"),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert!(resp.get("survivors").and_then(Json::as_arr).is_some());

    let req = request(&[("cmd", "\"generalize\""), ("model", &model)]);
    let resp = check_envelope(&s.handle_line(&req).response);
    let verdict = resp.get("verdict").and_then(Json::as_str).unwrap();
    assert!(
        ["generalized", "too_strong", "inductive"].contains(&verdict),
        "{resp}"
    );
}

#[test]
fn exhausted_budget_yields_budget_error_not_wrong_verdict() {
    let s = server();
    let model = Json::str(MODEL).to_string();
    let inv = Json::str(INVARIANT).to_string();
    let req = request(&[
        ("id", "\"b\""),
        ("cmd", "\"verify\""),
        ("model", &model),
        ("invariant", &inv),
        ("timeout_ms", "0"),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&resp), "budget");
    assert_eq!(resp.get("verdict").and_then(Json::as_str), Some("unknown"));
    // Partial telemetry still attached.
    assert!(resp.get("profile").is_some(), "{resp}");

    // The server is not wedged: the same request with a real budget works.
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &model),
        ("invariant", &inv),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(
        resp.get("verdict").and_then(Json::as_str),
        Some("inductive")
    );
}

#[test]
fn server_caps_clamp_request_budgets() {
    let s = Server::new(ServeConfig {
        max_timeout: Some(Duration::ZERO),
        ..ServeConfig::default()
    });
    let model = Json::str(MODEL).to_string();
    // The request asks for a generous hour; the server cap of zero wins.
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &model),
        ("timeout_ms", "3600000"),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(error_code(&resp), "budget");
}

#[test]
fn status_reports_counters_and_shutdown_drains() {
    let s = server();
    let model = Json::str(MODEL).to_string();
    let req = request(&[("cmd", "\"verify\""), ("model", &model)]);
    s.handle_line(&req);

    let resp = check_envelope(&s.handle_line(r#"{"cmd": "status"}"#).response);
    assert_eq!(resp.get("verdict").and_then(Json::as_str), Some("ok"));
    let requests = json_field(&resp, "requests");
    assert!(requests.get("received").and_then(Json::as_u64).unwrap() >= 2);
    let oracle = json_field(&resp, "oracle");
    assert!(oracle.get("queries").and_then(Json::as_u64).unwrap() > 0);

    let handled = s.handle_line(r#"{"cmd": "shutdown"}"#);
    let resp = check_envelope(&handled.response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert!(handled.close);
    assert!(s.stopping());

    // After shutdown: queries refused, status still answered.
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(error_code(&resp), "shutdown");
    let resp = check_envelope(&s.handle_line(r#"{"cmd": "status"}"#).response);
    assert_eq!(resp.get("stopping").and_then(Json::as_bool), Some(true));
}

/// Starts a TCP server on an ephemeral port on a background thread.
fn spawn_tcp(config: ServeConfig) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let server = Arc::new(Server::new(config));
    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.describe();
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_listener(listener).unwrap())
    };
    (server, addr, handle)
}

#[test]
fn oversized_request_line_gets_error_then_close() {
    let (server, addr, handle) = spawn_tcp(ServeConfig {
        max_line_bytes: 1024,
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).unwrap();
    // Junk past the cap with no newline in sight: rejected as soon as the
    // buffered prefix exceeds the limit, without waiting for the line to
    // ever end.
    let junk = vec![b'x'; 4096];
    stream.write_all(&junk).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let resp = check_envelope(&response);
    assert_eq!(error_code(&resp), "oversized");

    // The server survives to serve a fresh connection.
    let mut client = Client::connect(&Endpoint::parse(&addr)).unwrap();
    let line = client.roundtrip(r#"{"cmd": "status"}"#).unwrap();
    let resp = Json::parse(&line).unwrap();
    assert_eq!(resp.get("verdict").and_then(Json::as_str), Some("ok"));

    server.request_stop();
    handle.join().unwrap();
}

#[test]
fn mid_request_disconnect_does_not_wedge_workers() {
    let (server, addr, handle) = spawn_tcp(ServeConfig::default());
    // Half a request, then vanish.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"{\"cmd\": \"veri").unwrap();
        stream.flush().unwrap();
    } // dropped: RST/FIN mid-line
      // A full request, response never read.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        let model = Json::str(MODEL).to_string();
        let req = request(&[("cmd", "\"verify\""), ("model", &model)]);
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
    }
    // All workers still available for a well-behaved client.
    let mut client = Client::connect(&Endpoint::parse(&addr)).unwrap();
    let model = Json::str(MODEL).to_string();
    let inv = Json::str(INVARIANT).to_string();
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &model),
        ("invariant", &inv),
    ]);
    let line = client.roundtrip(&req).unwrap();
    let resp = Json::parse(&line).unwrap();
    assert_eq!(
        resp.get("verdict").and_then(Json::as_str),
        Some("inductive"),
        "{line}"
    );

    server.request_stop();
    handle.join().unwrap();
}

#[test]
fn overload_yields_busy_not_queue_collapse() {
    // One worker, zero queue slots: a second concurrent request must be
    // refused with `busy` while the first still completes.
    let (server, addr, handle) = spawn_tcp(ServeConfig {
        workers: 1,
        queue: 0,
        ..ServeConfig::default()
    });
    let model = Json::str(MODEL).to_string();
    let inv = Json::str(INVARIANT).to_string();
    let slow = request(&[
        ("id", "\"slow\""),
        ("cmd", "\"verify\""),
        ("model", &model),
        ("invariant", &inv),
    ]);

    let mut clients: Vec<std::thread::JoinHandle<Json>> = Vec::new();
    for _ in 0..6 {
        let addr = addr.clone();
        let slow = slow.clone();
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(&Endpoint::parse(&addr)).unwrap();
            Json::parse(&c.roundtrip(&slow).unwrap()).unwrap()
        }));
    }
    let responses: Vec<Json> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let busy = responses
        .iter()
        .filter(|r| r.get("ok") == Some(&Json::Bool(false)))
        .count();
    let served = responses
        .iter()
        .filter(|r| r.get("verdict").and_then(Json::as_str) == Some("inductive"))
        .count();
    assert_eq!(busy + served, 6, "{responses:?}");
    assert!(served >= 1, "at least one request must be served");
    for r in &responses {
        if r.get("ok") == Some(&Json::Bool(false)) {
            assert_eq!(error_code(r), "busy", "{r}");
        }
    }

    server.request_stop();
    handle.join().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_roundtrips() {
    let path = std::env::temp_dir().join(format!("ivy_serve_{}.sock", std::process::id()));
    let server = Arc::new(Server::new(ServeConfig::default()));
    let listener = Listener::bind_unix(&path).unwrap();
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve_listener(listener).unwrap())
    };
    let mut client = Client::connect(&Endpoint::Unix(path.clone())).unwrap();
    let line = client.roundtrip(r#"{"cmd": "status"}"#).unwrap();
    let resp = Json::parse(&line).unwrap();
    assert_eq!(resp.get("verdict").and_then(Json::as_str), Some("ok"));

    // Shutdown over the wire: the accept loop drains and returns.
    let line = client.roundtrip(r#"{"cmd": "shutdown"}"#).unwrap();
    let resp = Json::parse(&line).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    handle.join().unwrap();
    std::fs::remove_file(&path).ok();
}

/// A deliberately non-EPR model: `f : t -> t` breaks stratification, so
/// full instantiation refuses it and only a `bound` admits it.
const OPEN_MODEL: &str = r#"
sort t
function f : t -> t
relation p : t
local x : t
safety all_p: forall X:t. p(X)
init { p(X0) := true }
action grow { havoc x; p.insert(x) }
"#;

#[test]
fn non_epr_model_without_bound_is_refused_with_a_hint() {
    let s = server();
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &Json::str(OPEN_MODEL).to_string()),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(error_code(&resp), "model");
    let msg = json_field(&resp, "error")
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(
        msg.contains("not stratified") && msg.contains("bound"),
        "expected a cycle diagnostic plus a bound hint, got: {msg}"
    );
}

#[test]
fn bound_field_admits_and_proves_a_non_epr_model() {
    // Safety alone is inductive here (p only grows): every query is a
    // refutation, and refutations under a bound are sound verdicts.
    let s = server();
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &Json::str(OPEN_MODEL).to_string()),
        ("bound", "2"),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(
        resp.get("verdict").and_then(Json::as_str),
        Some("inductive")
    );
}

#[test]
fn bound_leaning_sat_degrades_to_budget_error_not_a_cti() {
    // Flip the action to *remove* facts: the CTI query is satisfiable,
    // but its model leans on the truncated universe, so the honest
    // answer is `unknown` with a `budget` error — never a CTI.
    let model = OPEN_MODEL.replace("p.insert(x)", "p.remove(x)");
    let s = server();
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &Json::str(&model).to_string()),
        ("bound", "2"),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&resp), "budget");
    assert_eq!(resp.get("verdict").and_then(Json::as_str), Some("unknown"));
    let msg = json_field(&resp, "error")
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(
        msg.contains("bound"),
        "stop reason should name the bound: {msg}"
    );
}

#[test]
fn server_default_bound_applies_when_the_request_names_none() {
    let config = ServeConfig {
        default_bound: Some(2),
        ..ServeConfig::default()
    };
    let s = Server::new(config);
    let req = request(&[
        ("cmd", "\"verify\""),
        ("model", &Json::str(OPEN_MODEL).to_string()),
    ]);
    let resp = check_envelope(&s.handle_line(&req).response);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(
        resp.get("verdict").and_then(Json::as_str),
        Some("inductive")
    );
}
