//! End-to-end smoke tests of the `ivy` CLI binary.

use std::io::Write;
use std::process::Command;

const MODEL: &str = r#"
sort client
relation has_lock : client
relation lock_free
local c : client
safety mutex: forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2
init { has_lock(X0) := false; lock_free() := true }
action acquire { havoc c; assume lock_free; lock_free() := false; has_lock.insert(c) }
action release { havoc c; assume has_lock(c); has_lock.remove(c); lock_free() := true }
"#;

const INVARIANT: &str = "\
mutex: forall C1:client, C2:client. has_lock(C1) & has_lock(C2) -> C1 = C2
excl: forall C:client. has_lock(C) -> ~lock_free
";

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ivy_cli_{}_{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

fn ivy(args: &[&str]) -> (bool, String) {
    let (code, text) = ivy_code(args);
    (code == 0, text)
}

fn ivy_code(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ivy"))
        .args(args)
        .output()
        .expect("run ivy binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        out.status
            .code()
            .expect("ivy must exit, not die on a signal"),
        text,
    )
}

#[test]
fn check_bmc_prove_roundtrip() {
    let model = write_temp("m.rml", MODEL);
    let inv = write_temp("m.inv", INVARIANT);
    let model = model.to_str().unwrap();

    let (ok, text) = ivy(&["check", model]);
    assert!(ok, "{text}");
    assert!(text.contains("2 actions"), "{text}");

    let (ok, text) = ivy(&["bmc", model, "-k", "3"]);
    assert!(ok, "{text}");
    assert!(text.contains("safe within 3"), "{text}");

    // Safety alone is not inductive: prove fails, cti shows a state.
    let (ok, text) = ivy(&["prove", model]);
    assert!(!ok);
    assert!(text.contains("not inductive"), "{text}");

    let (ok, text) = ivy(&["cti", model]);
    assert!(!ok);
    assert!(text.contains("state:"), "{text}");

    // With the strengthened invariant file: proved.
    let (ok, text) = ivy(&["prove", model, inv.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("inductive"), "{text}");

    // DOT output is well-formed enough to contain a digraph.
    let (_, text) = ivy(&["dot", model]);
    assert!(text.contains("digraph"), "{text}");

    // Houdini with a tiny template runs and reports.
    let (_, text) = ivy(&["houdini", model, "--vars", "1", "--lits", "1"]);
    assert!(text.contains("survive"), "{text}");
}

#[test]
fn bad_model_reports_validation_errors() {
    let model = write_temp(
        "bad.rml",
        "sort s\nrelation r : s\ninit { r(X0) := exists Y:s. Y = X0 }\n",
    );
    let (ok, text) = ivy(&["check", model.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("quantified"), "{text}");
}

#[test]
fn kinv_detects_violations() {
    let model = write_temp("m2.rml", MODEL);
    let model = model.to_str().unwrap();
    let (ok, _) = ivy(&["kinv", model, "-k", "2", "forall C:client. ~has_lock(C)"]);
    assert!(!ok, "someone can acquire within 2 steps");
    let (ok, text) = ivy(&["kinv", model, "-k", "2", "lock_free | ~lock_free"]);
    assert!(ok, "{text}");
}

#[test]
fn strategy_and_jobs_flags_select_the_oracle_strategy() {
    let model = write_temp("s.rml", MODEL);
    let inv = write_temp("s.inv", INVARIANT);
    let model = model.to_str().unwrap();
    let inv = inv.to_str().unwrap();

    // Every strategy proves the same invariant.
    for extra in [
        &["--strategy", "fresh"][..],
        &["--strategy", "session"],
        &["--strategy", "parallel"],
        &["--strategy", "parallel", "--jobs", "2"],
        &["--strategy", "portfolio"],
        &["--strategy", "portfolio", "--jobs", "2"],
        // --jobs alone implies the parallel strategy.
        &["--jobs", "2"],
    ] {
        let mut args = vec!["prove", model, inv];
        args.extend_from_slice(extra);
        let (code, text) = ivy_code(&args);
        assert_eq!(code, 0, "{extra:?}: {text}");
        assert!(text.contains("inductive"), "{extra:?}: {text}");
    }
    // The flags work on BMC too.
    let (ok, text) = ivy(&["bmc", model, "-k", "2", "--strategy", "fresh"]);
    assert!(ok, "{text}");
    assert!(text.contains("safe within 2"), "{text}");
}

#[test]
fn bad_strategy_or_jobs_is_a_usage_error() {
    let model = write_temp("u.rml", MODEL);
    let model = model.to_str().unwrap();
    for args in [
        &["prove", model, "--strategy", "turbo"][..],
        &["prove", model, "--jobs", "0"],
        &["prove", model, "--jobs", "many"],
        &["prove", model, "--strategy", "portfolio", "--jobs", "0"],
        &["prove", model, "--strategy", "portfolio", "--jobs", "-3"],
        &["prove", model, "--strategy", "portfolio", "--jobs", "many"],
        // --jobs contradicts a sequential strategy.
        &["prove", model, "--strategy", "fresh", "--jobs", "2"],
        &["prove", model, "--strategy", "session", "--jobs", "2"],
    ] {
        let (code, text) = ivy_code(args);
        assert_eq!(code, 2, "{args:?}: {text}");
        assert!(text.contains("error:"), "{args:?}: {text}");
    }
}

#[test]
fn profile_flag_writes_schema_valid_report() {
    let model = write_temp("p.rml", MODEL);
    let inv = write_temp("p.inv", INVARIANT);
    let profile = std::env::temp_dir().join(format!("ivy_cli_{}_profile.json", std::process::id()));
    let (code, text) = ivy_code(&[
        "prove",
        model.to_str().unwrap(),
        inv.to_str().unwrap(),
        "--profile",
        profile.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("inductive"), "{text}");
    let json = std::fs::read_to_string(&profile).unwrap();
    assert!(json.contains("\"schema\": \"ivy-profile-v1\""), "{json}");
    assert!(json.contains("\"outcome\": \"inductive\""), "{json}");
    assert!(json.contains("\"phases\""), "{json}");
    assert!(json.contains("\"counters\""), "{json}");
    std::fs::remove_file(&profile).ok();
}

#[test]
fn zero_timeout_degrades_to_unknown_with_partial_profile() {
    let model = write_temp("t.rml", MODEL);
    let inv = write_temp("t.inv", INVARIANT);
    let profile = std::env::temp_dir().join(format!("ivy_cli_{}_timeout.json", std::process::id()));
    let (code, text) = ivy_code(&[
        "prove",
        model.to_str().unwrap(),
        inv.to_str().unwrap(),
        "--timeout",
        "0",
        "--profile",
        profile.to_str().unwrap(),
    ]);
    // Graceful degradation: exit 3 ("unknown"), never a wrong verdict or
    // a panic; the profile still records partial statistics.
    assert_eq!(code, 3, "{text}");
    assert!(text.contains("unknown (deadline exceeded)"), "{text}");
    assert!(!text.contains("inductive"), "{text}");
    let json = std::fs::read_to_string(&profile).unwrap();
    assert!(json.contains("\"outcome\": \"unknown\""), "{json}");
    assert!(json.contains("deadline"), "{json}");
    std::fs::remove_file(&profile).ok();
}

#[test]
fn repeated_or_valueless_flags_are_usage_errors() {
    let model = write_temp("dup.rml", MODEL);
    let model = model.to_str().unwrap();
    for args in [
        // A repeated global flag must not silently pick one value.
        &["prove", model, "--timeout", "5", "--timeout", "10"][..],
        &[
            "prove",
            model,
            "--strategy",
            "session",
            "--strategy",
            "fresh",
        ],
        &["prove", model, "--jobs", "2", "--jobs", "4"],
        // A repeated subcommand flag is just as ambiguous.
        &["bmc", model, "-k", "2", "-k", "3"],
        &["houdini", model, "--vars", "1", "--vars", "2"],
        // A flag with no value must not be reparsed as a positional arg.
        &["prove", model, "--timeout"],
        &["prove", model, "--strategy"],
    ] {
        let (code, text) = ivy_code(args);
        assert_eq!(code, 2, "{args:?}: {text}");
        assert!(text.contains("error:"), "{args:?}: {text}");
    }
}

#[test]
fn usage_mentions_serve_and_client() {
    let (code, text) = ivy_code(&[]);
    assert_eq!(code, 2);
    assert!(text.contains("serve"), "{text}");
    assert!(text.contains("client"), "{text}");
}

#[test]
fn serve_and_client_roundtrip_over_tcp() {
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Stdio};

    let model = write_temp("srv.rml", MODEL);
    let inv = write_temp("srv.inv", INVARIANT);
    let model = model.to_str().unwrap();
    let inv = inv.to_str().unwrap();

    // Start the daemon on an ephemeral port; the first stdout line is the
    // address contract.
    let mut server: Child = Command::new(env!("CARGO_BIN_EXE_ivy"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ivy serve");
    let mut stdout = BufReader::new(server.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("ivy-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_string();

    // Thin-driver verdicts and exit codes mirror the one-shot CLI.
    let (code, text) = ivy_code(&["client", "--connect", &addr, "prove", model, inv]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("verdict: inductive"), "{text}");
    assert!(text.contains("cache:"), "{text}");

    let (code, text) = ivy_code(&["client", "--connect", &addr, "prove", model]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("verdict: cti"), "{text}");

    let (code, text) = ivy_code(&["client", "--connect", &addr, "bmc", model, "-k", "2"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("verdict: safe"), "{text}");

    // A second identical prove is served from the warm frame cache.
    let (code, text) = ivy_code(&["client", "--connect", &addr, "prove", model, inv, "--raw"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("\"frame_hits\""), "{text}");
    assert!(text.contains("\"frame_misses\":0"), "{text}");

    let (code, text) = ivy_code(&["client", "--connect", &addr, "status"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("verdict: ok"), "{text}");

    // Budget exhaustion over the wire: exit 3, like the one-shot CLI.
    let (code, text) = ivy_code(&[
        "client",
        "--connect",
        &addr,
        "prove",
        model,
        inv,
        "--timeout",
        "0",
    ]);
    assert_eq!(code, 3, "{text}");

    // Clean shutdown via the protocol; the server process exits 0.
    let (code, text) = ivy_code(&["client", "--connect", &addr, "shutdown"]);
    assert_eq!(code, 0, "{text}");
    let status = server.wait().expect("server wait");
    assert_eq!(status.code(), Some(0));

    // Usage errors in the client itself.
    let (code, text) = ivy_code(&["client", "prove", model]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("--connect"), "{text}");
}
