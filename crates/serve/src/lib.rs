//! `ivy-serve`: a persistent, concurrent verification service.
//!
//! Verification workloads are bursty and repetitive: an interactive
//! invariant-discovery loop re-checks near-identical frames dozens of
//! times, and a cold process pays parsing, grounding, and solver
//! construction on every run. This crate turns the frame-cached
//! [`ivy_core::Oracle`] into a long-lived daemon so that cost is paid
//! once per *frame*, not once per *request*:
//!
//! - [`server`] — the daemon: a bounded worker pool behind an admission
//!   gate, all workers sharing one oracle (one session pool, one
//!   interner) so every client warms the cache for every other client.
//! - [`proto`] — the newline-delimited JSON wire protocol: request
//!   parsing, error codes, and response shapes (see
//!   `docs/serve-protocol.md` for the normative description).
//! - [`json`] — a dependency-free JSON parser and single-line
//!   serializer (the whole crate is std-only).
//! - [`client`] — a blocking one-line-in, one-line-out client used by
//!   `ivy client` and the `bench_serve` load generator.
//!
//! Every response carries the verdict, an `ivy-profile-v1` telemetry
//! block scoped to that request, and cache provenance (frame hits,
//! misses, sessions built), so a client can always tell whether it was
//! served warm.

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{Client, Endpoint};
pub use json::Json;
pub use proto::{ErrorCode, WireError};
pub use server::{Handled, Listener, ServeConfig, Server};
