//! A minimal blocking client for the line protocol.
//!
//! One request per call: write a newline-terminated JSON line, read the
//! single response line. Used by `ivy client` and the load generator.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where a server is listening.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP address such as `127.0.0.1:7877`.
    Tcp(String),
    /// A Unix-socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH` or a TCP `HOST:PORT` spec.
    pub fn parse(spec: &str) -> Endpoint {
        #[cfg(unix)]
        if let Some(path) = spec.strip_prefix("unix:") {
            return Endpoint::Unix(PathBuf::from(path));
        }
        Endpoint::Tcp(spec.to_string())
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A connected client holding one persistent connection, so consecutive
/// requests from the same client reuse the server's warm state.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects to a server endpoint.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true).ok();
                let reader = stream.try_clone()?;
                Ok(Client {
                    reader: BufReader::new(Box::new(reader)),
                    writer: Box::new(stream),
                })
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                let reader = stream.try_clone()?;
                Ok(Client {
                    reader: BufReader::new(Box::new(reader)),
                    writer: Box::new(stream),
                })
            }
        }
    }

    /// Sends one request line and reads the one response line
    /// (newline-terminated on the wire, stripped in the return value).
    pub fn roundtrip(&mut self, request: &str) -> io::Result<String> {
        let line = request.trim_end_matches(['\r', '\n']);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with(['\r', '\n']) {
            response.pop();
        }
        Ok(response)
    }
}
