//! A minimal, dependency-free JSON value: parser and compact serializer.
//!
//! The wire protocol is newline-delimited JSON, so the serializer never
//! emits literal newlines — a serialized [`Json`] value is always a valid
//! single protocol line. The parser is a plain recursive-descent reader
//! with a nesting-depth cap (a hostile client cannot blow the stack) and
//! accepts exactly the JSON grammar (RFC 8259): no trailing commas, no
//! comments, no `NaN`/`Infinity`.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve no duplicate keys (last wins) and
/// iterate in key order, so serialization is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON value; trailing (non-whitespace) input is
    /// an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// An object from key/value pairs (convenience constructor).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Looks up a key on an object (`None` on non-objects and absent or
    /// `null` fields).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => match map.get(key) {
                Some(Json::Null) | None => None,
                Some(v) => Some(v),
            },
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a number with an
    /// exact `u64` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Compact, single-line serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints shortest round-trip form; integers
                    // print without a fraction.
                    write!(f, "{n}")
                } else {
                    write!(f, "null") // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => write_json_str(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_json_str(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_json_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte `{}` at {}", b as char, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("malformed number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Json {
        let v = Json::parse(text).unwrap();
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again, "roundtrip of {text}");
        v
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(roundtrip("null"), Json::Null);
        assert_eq!(roundtrip("true"), Json::Bool(true));
        assert_eq!(roundtrip("-12.5e2"), Json::Num(-1250.0));
        assert_eq!(
            roundtrip(r#""a\nb\u0041\ud83d\ude00""#).as_str(),
            Some("a\nbA😀")
        );
    }

    #[test]
    fn parses_containers() {
        let v = roundtrip(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[_]>::len), Some(3));
        // `null` fields read as absent.
        assert!(Json::parse(r#"{"a": null}"#).unwrap().get("a").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "01a",
            "\"abc",
            "{\"a\" 1}",
            "[1] trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb: caps out instead of blowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn serialization_is_single_line() {
        let v = Json::obj([
            ("text", Json::str("line1\nline2\t\"quoted\"")),
            ("n", Json::num(3.25)),
        ]);
        let s = v.to_string();
        assert!(!s.contains('\n'), "{s}");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
