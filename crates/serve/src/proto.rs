//! Wire protocol types: requests, responses, and error codes.
//!
//! One request per line, one response per line, both JSON objects — the
//! full schema (fields, verdicts, error codes) is specified in
//! `docs/serve-protocol.md`. This module is transport-agnostic: it turns
//! a request line into a [`Request`] (or a [`WireError`]) and a handler
//! outcome back into a response line. Anything that can go wrong before
//! the engines run — unparseable JSON, an unknown command, a missing
//! model — is reported as a well-formed error response, never a dropped
//! connection or a wedged worker.

use crate::json::Json;

/// Machine-readable error classes, stable across releases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON (or not an object).
    Parse,
    /// The request was valid JSON but violated the protocol: unknown
    /// command, missing or ill-typed field.
    Protocol,
    /// The request line exceeded the server's size cap. The connection is
    /// closed after this response (the stream cannot be resynchronized).
    Oversized,
    /// The server is saturated: all workers busy and the admission queue
    /// full. Retry later; nothing was executed.
    Busy,
    /// The model (or invariant) failed to parse or validate.
    Model,
    /// The request exhausted its resource budget; `stop` names the
    /// exhausted resource. The verdict is `unknown`, never wrong.
    Budget,
    /// The engine rejected the query (e.g. outside the supported
    /// fragment).
    Engine,
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// An internal invariant failed (a bug worth reporting).
    Internal,
}

impl ErrorCode {
    /// The stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Busy => "busy",
            ErrorCode::Model => "model",
            ErrorCode::Budget => "budget",
            ErrorCode::Engine => "engine",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A protocol-level failure: an error code plus a human-readable message.
#[derive(Clone, Debug)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// Details for humans; the code is the contract.
    pub message: String,
}

impl WireError {
    /// Constructs an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// The verbs a server understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Check an inductive invariant (CLI `prove`).
    Verify,
    /// Bounded model checking of the safety properties.
    Bmc,
    /// Houdini invariant inference.
    Houdini,
    /// Automatic invariant synthesis from the safety properties alone.
    Infer,
    /// Find a minimal CTI and auto-generalize it.
    Generalize,
    /// Server health and counters.
    Status,
    /// Stop accepting work and exit after in-flight requests drain.
    Shutdown,
}

impl Command {
    fn from_tag(tag: &str) -> Option<Command> {
        Some(match tag {
            "verify" => Command::Verify,
            "bmc" => Command::Bmc,
            "houdini" => Command::Houdini,
            "infer" => Command::Infer,
            "generalize" => Command::Generalize,
            "status" => Command::Status,
            "shutdown" => Command::Shutdown,
            _ => return None,
        })
    }

    /// True when the command runs solver work (and therefore passes
    /// admission control); `status`/`shutdown` are always admitted.
    pub fn is_query(self) -> bool {
        !matches!(self, Command::Status | Command::Shutdown)
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Json,
    /// The verb.
    pub cmd: Command,
    /// Inline RML model source (`model`), if given.
    pub model: Option<String>,
    /// Server-side model path (`model_path`), if given.
    pub model_path: Option<String>,
    /// Named conjectures (`invariant`), if given; otherwise the model's
    /// safety properties are used.
    pub invariant: Option<Vec<(String, String)>>,
    /// BMC depth / generalization bound (`depth`).
    pub depth: Option<usize>,
    /// Houdini template: quantified variables per candidate (`vars`).
    pub vars: Option<usize>,
    /// Houdini template: literals per candidate (`lits`).
    pub lits: Option<usize>,
    /// Per-request wall-clock budget in milliseconds (`timeout_ms`),
    /// covering queue time and execution.
    pub timeout_ms: Option<u64>,
    /// Per-request cap on ground instances (`max_instances`).
    pub max_instances: Option<u64>,
    /// Instantiation depth bound (`bound`): admits non-EPR models via
    /// bounded instantiation. UNSAT-backed verdicts remain verdicts; a
    /// result that leaned on the bound is `unknown` with a `budget`
    /// error, never wrong.
    pub bound: Option<usize>,
}

fn field_usize(obj: &Json, key: &str) -> Result<Option<usize>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) if n <= usize::MAX as u64 => Ok(Some(n as usize)),
            _ => Err(WireError::new(
                ErrorCode::Protocol,
                format!("field `{key}` must be a non-negative integer"),
            )),
        },
    }
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            WireError::new(
                ErrorCode::Protocol,
                format!("field `{key}` must be a non-negative integer"),
            )
        }),
    }
}

fn field_str(obj: &Json, key: &str) -> Result<Option<String>, WireError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            WireError::new(
                ErrorCode::Protocol,
                format!("field `{key}` must be a string"),
            )
        }),
    }
}

/// Parses the `invariant` field: an array of `{"name", "formula"}`
/// objects, or a string of `name: formula` lines (the `.inv` file format;
/// blank lines and `#` comments ignored).
fn field_invariant(obj: &Json) -> Result<Option<Vec<(String, String)>>, WireError> {
    let bad = |msg: &str| WireError::new(ErrorCode::Protocol, format!("field `invariant`: {msg}"));
    match obj.get("invariant") {
        None => Ok(None),
        Some(Json::Str(text)) => {
            let mut out = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (name, formula) = line.split_once(':').ok_or_else(|| {
                    bad(&format!("line {}: expected `name: formula`", lineno + 1))
                })?;
                out.push((name.trim().to_string(), formula.trim().to_string()));
            }
            Ok(Some(out))
        }
        Some(Json::Arr(items)) => {
            let mut out = Vec::new();
            for item in items {
                let name = item
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("each entry needs a string `name`"))?;
                let formula = item
                    .get("formula")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("each entry needs a string `formula`"))?;
                out.push((name.to_string(), formula.to_string()));
            }
            Ok(Some(out))
        }
        Some(_) => Err(bad("must be an array of {name, formula} or a string")),
    }
}

/// Parses one request line. Everything wrong with the line itself maps to
/// [`ErrorCode::Parse`]; structurally valid JSON that violates the
/// protocol maps to [`ErrorCode::Protocol`]. Errors carry whatever `id`
/// could be recovered from the line, so even a refusal echoes it.
pub fn parse_request(line: &str) -> Result<Request, (Json, WireError)> {
    let value =
        Json::parse(line.trim()).map_err(|e| (Json::Null, WireError::new(ErrorCode::Parse, e)))?;
    if !matches!(value, Json::Obj(_)) {
        return Err((
            Json::Null,
            WireError::new(ErrorCode::Parse, "request must be a JSON object"),
        ));
    }
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    parse_request_fields(&value, id.clone()).map_err(|e| (id, e))
}

fn parse_request_fields(value: &Json, id: Json) -> Result<Request, WireError> {
    let cmd_tag = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(ErrorCode::Protocol, "missing string field `cmd`"))?;
    let cmd = Command::from_tag(cmd_tag).ok_or_else(|| {
        WireError::new(
            ErrorCode::Protocol,
            format!(
                "unknown command `{cmd_tag}` \
                 (expected verify|bmc|houdini|infer|generalize|status|shutdown)"
            ),
        )
    })?;
    let req = Request {
        id,
        cmd,
        model: field_str(value, "model")?,
        model_path: field_str(value, "model_path")?,
        invariant: field_invariant(value)?,
        depth: field_usize(value, "depth")?,
        vars: field_usize(value, "vars")?,
        lits: field_usize(value, "lits")?,
        timeout_ms: field_u64(value, "timeout_ms")?,
        max_instances: field_u64(value, "max_instances")?,
        bound: field_usize(value, "bound")?,
    };
    if req.cmd.is_query() && req.model.is_none() && req.model_path.is_none() {
        return Err(WireError::new(
            ErrorCode::Protocol,
            format!("command `{cmd_tag}` needs a `model` (inline source) or `model_path`"),
        ));
    }
    Ok(req)
}

/// Serializes an error response for `id` (one line, newline-terminated).
pub fn error_response(id: &Json, err: &WireError) -> String {
    let mut obj = Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::str(err.code.tag())),
                ("message", Json::str(err.message.clone())),
            ]),
        ),
    ]);
    if let Json::Obj(map) = &mut obj {
        map.insert("id".to_string(), id.clone());
    }
    format!("{obj}\n")
}

/// Serializes a success response: `fields` are merged into the envelope
/// `{"id": ..., "ok": true, "verdict": ...}` (one line,
/// newline-terminated).
pub fn ok_response(
    id: &Json,
    verdict: &str,
    fields: impl IntoIterator<Item = (&'static str, Json)>,
) -> String {
    let mut obj = Json::obj([("ok", Json::Bool(true)), ("verdict", Json::str(verdict))]);
    if let Json::Obj(map) = &mut obj {
        map.insert("id".to_string(), id.clone());
        for (k, v) in fields {
            map.insert(k.to_string(), v);
        }
    }
    format!("{obj}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_verify_request() {
        let req =
            parse_request(r#"{"id": 7, "cmd": "verify", "model": "sort s", "timeout_ms": 500}"#)
                .unwrap();
        assert_eq!(req.cmd, Command::Verify);
        assert_eq!(req.id, Json::Num(7.0));
        assert_eq!(req.model.as_deref(), Some("sort s"));
        assert_eq!(req.timeout_ms, Some(500));
    }

    #[test]
    fn parses_the_bound_field() {
        let req = parse_request(r#"{"cmd": "verify", "model": "m", "bound": 3}"#).unwrap();
        assert_eq!(req.bound, Some(3));
        let req = parse_request(r#"{"cmd": "verify", "model": "m"}"#).unwrap();
        assert_eq!(req.bound, None);
        assert_eq!(
            parse_request(r#"{"cmd": "verify", "model": "m", "bound": "deep"}"#)
                .unwrap_err()
                .1
                .code,
            ErrorCode::Protocol
        );
    }

    #[test]
    fn invariant_accepts_both_forms() {
        let arr = parse_request(
            r#"{"cmd": "verify", "model": "m",
               "invariant": [{"name": "a", "formula": "x = x"}]}"#,
        )
        .unwrap();
        let text = parse_request(
            "{\"cmd\": \"verify\", \"model\": \"m\", \"invariant\": \"# c\\na: x = x\\n\"}",
        )
        .unwrap();
        assert_eq!(arr.invariant, text.invariant);
        assert_eq!(
            arr.invariant.unwrap(),
            vec![("a".to_string(), "x = x".to_string())]
        );
    }

    #[test]
    fn classifies_parse_vs_protocol_errors() {
        assert_eq!(parse_request("{oops").unwrap_err().1.code, ErrorCode::Parse);
        assert_eq!(parse_request("[1,2]").unwrap_err().1.code, ErrorCode::Parse);
        assert_eq!(
            parse_request(r#"{"cmd": "fly", "model": "m"}"#)
                .unwrap_err()
                .1
                .code,
            ErrorCode::Protocol
        );
        assert_eq!(
            parse_request(r#"{"cmd": "verify"}"#).unwrap_err().1.code,
            ErrorCode::Protocol
        );
        assert_eq!(
            parse_request(r#"{"cmd": "verify", "model": "m", "depth": -1}"#)
                .unwrap_err()
                .1
                .code,
            ErrorCode::Protocol
        );
        // status/shutdown need no model.
        assert!(parse_request(r#"{"cmd": "status"}"#).is_ok());
        assert!(parse_request(r#"{"cmd": "shutdown"}"#).is_ok());
    }

    #[test]
    fn protocol_errors_recover_the_request_id() {
        let (id, err) = parse_request(r#"{"id": 42, "cmd": "frobnicate"}"#).unwrap_err();
        assert_eq!(id, Json::Num(42.0));
        assert_eq!(err.code, ErrorCode::Protocol);
        // Unparseable lines have no id to recover.
        let (id, _) = parse_request("{oops").unwrap_err();
        assert_eq!(id, Json::Null);
    }

    #[test]
    fn responses_echo_the_id_and_stay_single_line() {
        let id = Json::str("req-1");
        let err = error_response(&id, &WireError::new(ErrorCode::Busy, "try\nlater"));
        assert!(err.ends_with('\n'));
        assert_eq!(err.matches('\n').count(), 1);
        let v = Json::parse(err.trim()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("req-1"));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("busy")
        );
        let ok = ok_response(&id, "inductive", [("wall_ms", Json::num(1.5))]);
        let v = Json::parse(ok.trim()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("inductive"));
    }
}
