//! The verification server: admission control, dispatch, and transports.
//!
//! One [`Server`] owns one base [`Oracle`] whose frame-keyed session pool
//! is shared by every request: each request derives a *view* of the
//! oracle carrying that request's budget (`timeout_ms`, `max_instances`),
//! so admission control is per-request while cache warmth is global.
//! Requests are admitted through a bounded gate (`workers` concurrent
//! executions, `queue` waiting slots); overload is an explicit `busy`
//! error response, never an unbounded queue.
//!
//! The dispatch core ([`Server::handle_line`]) is transport-agnostic and
//! directly unit-testable; [`Server::serve_listener`] wires it to a TCP
//! or Unix-socket listener with one thread per connection.

use std::io::{self, Read, Write};
use std::net::{TcpListener, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ivy_core::{
    enumerate_candidates, houdini_with_oracle, infer, trace_to_text, AutoGen, Bmc, Conjecture,
    Generalizer, Inductiveness, InferOptions, Measure, Oracle, QueryStrategy, Verifier,
};
use ivy_epr::{Budget, EprError, InstantiationMode};
use ivy_fol::{parse_formula, PartialStructure};
use ivy_rml::{check_program, parse_program, Program};
use ivy_telemetry::local_rollup_begin;

use crate::json::Json;
use crate::proto::{
    error_response, ok_response, parse_request, Command, ErrorCode, Request, WireError,
};

/// Server tuning knobs. [`ServeConfig::default`] suits an interactive
/// localhost daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum concurrently *executing* requests.
    pub workers: usize,
    /// Waiting slots behind the workers; a request arriving when all
    /// workers are busy and the queue is full is refused with `busy`.
    pub queue: usize,
    /// Default per-request wall-clock budget when the request names none.
    pub default_timeout: Option<Duration>,
    /// Server-side cap on per-request `timeout_ms` (requests asking for
    /// more are clamped, not refused).
    pub max_timeout: Option<Duration>,
    /// Server-side cap on per-request `max_instances` (clamped likewise).
    pub instance_cap: Option<u64>,
    /// Default instantiation bound when the request names none: requests
    /// without a `bound` field run bounded at this depth (admitting
    /// non-EPR models server-wide). A request's own `bound` wins.
    pub default_bound: Option<usize>,
    /// Longest accepted request line in bytes; longer lines get an
    /// `oversized` error and the connection is closed (a partially read
    /// line cannot be resynchronized).
    pub max_line_bytes: usize,
    /// Query strategy of the shared oracle.
    pub strategy: QueryStrategy,
    /// Session-pool capacity of the shared oracle (see
    /// [`Oracle::set_pool_capacity`]); sized for `workers` concurrent
    /// tenants re-visiting a handful of hot frames each.
    pub pool_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2);
        ServeConfig {
            workers,
            queue: workers * 4,
            default_timeout: None,
            max_timeout: None,
            instance_cap: None,
            default_bound: None,
            max_line_bytes: 8 << 20,
            strategy: QueryStrategy::Session,
            pool_capacity: (workers * 24).max(64),
        }
    }
}

/// Bounded admission gate: at most `workers` tenants inside, at most
/// `queue` waiting. Entering returns a RAII permit (released on drop, so
/// a panicking handler can never leak a slot); a refused entry is the
/// caller's cue to answer `busy`.
struct Gate {
    state: Mutex<(usize, usize)>, // (active, waiting)
    cv: Condvar,
    workers: usize,
    queue: usize,
}

struct Permit<'g>(&'g Gate);

impl Gate {
    fn new(workers: usize, queue: usize) -> Gate {
        Gate {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            workers: workers.max(1),
            queue,
        }
    }

    fn try_enter(&self) -> Option<Permit<'_>> {
        let mut st = self.state.lock().unwrap();
        if st.0 < self.workers {
            st.0 += 1;
            return Some(Permit(self));
        }
        if st.1 >= self.queue {
            return None;
        }
        st.1 += 1;
        loop {
            st = self.cv.wait(st).unwrap();
            if st.0 < self.workers {
                st.1 -= 1;
                st.0 += 1;
                return Some(Permit(self));
            }
        }
    }

    fn load(&self) -> (usize, usize) {
        *self.state.lock().unwrap()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap();
        st.0 -= 1;
        self.0.cv.notify_one();
    }
}

/// Monotonic server counters, all visible through `status`.
#[derive(Default)]
struct Counters {
    received: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
}

/// A successful dispatch: the verdict string plus extra response fields.
type Verdict = (&'static str, Vec<(&'static str, Json)>);

/// A verification server sharing one frame-cached oracle across clients.
pub struct Server {
    config: ServeConfig,
    oracle: Oracle,
    gate: Gate,
    counters: Counters,
    stop: AtomicBool,
    started: Instant,
}

/// The outcome of handling one request line.
pub struct Handled {
    /// The response line (newline-terminated, single line).
    pub response: String,
    /// True when the connection should be closed after writing the
    /// response (shutdown acknowledged, or the stream is unrecoverable).
    pub close: bool,
}

/// A bound listening socket for [`Server::serve_listener`].
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-socket listener, replacing a stale socket file.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path) -> io::Result<Listener> {
        let _ = std::fs::remove_file(path);
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// A printable address clients can connect to.
    pub fn describe(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".to_string()),
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unix>".to_string()),
        }
    }
}

impl Server {
    /// A server with the given tuning; the shared oracle adopts the
    /// config's strategy and pool capacity.
    pub fn new(config: ServeConfig) -> Server {
        let mut oracle = Oracle::new();
        oracle.set_strategy(config.strategy);
        oracle.set_pool_capacity(config.pool_capacity);
        Server {
            gate: Gate::new(config.workers, config.queue),
            oracle,
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            config,
        }
    }

    /// The shared oracle (e.g. to inspect the rollup in tests/benches).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// True once a `shutdown` request was acknowledged.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown programmatically (same as the wire command).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Handles one request line end to end: parse, admission, dispatch,
    /// response. Always returns a well-formed, newline-terminated JSON
    /// response line — every failure mode maps to an error code.
    pub fn handle_line(&self, line: &str) -> Handled {
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err((id, err)) => return self.refuse(&id, &err),
        };
        if self.stopping() && req.cmd != Command::Status {
            return Handled {
                response: error_response(
                    &req.id,
                    &WireError::new(ErrorCode::Shutdown, "server is shutting down"),
                ),
                close: true,
            };
        }
        match req.cmd {
            Command::Status => self.status(&req),
            Command::Shutdown => {
                self.request_stop();
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                Handled {
                    response: ok_response(&req.id, "ok", []),
                    close: true,
                }
            }
            _ => self.execute(&req),
        }
    }

    /// Admission + engines for query commands.
    fn execute(&self, req: &Request) -> Handled {
        // The budget clock starts at arrival: queue time counts against
        // the request's deadline, so a saturated server degrades to
        // honest `unknown (deadline exceeded)` answers instead of
        // serving stale work long after the client gave up.
        let budget = self.admission_budget(req);
        let Some(_permit) = self.gate.try_enter() else {
            self.counters.busy.fetch_add(1, Ordering::Relaxed);
            return self.refuse(
                &req.id,
                &WireError::new(
                    ErrorCode::Busy,
                    format!(
                        "all {} workers busy and {} queue slots full",
                        self.config.workers, self.config.queue
                    ),
                ),
            );
        };
        let started = Instant::now();
        let scope = local_rollup_begin();
        let result =
            catch_unwind(AssertUnwindSafe(|| self.dispatch(req, budget))).unwrap_or_else(|panic| {
                let msg = panic_message(&panic);
                Err(WireError::new(ErrorCode::Internal, msg))
            });
        let rollup = scope.finish();
        let wall = started.elapsed();

        // Per-request telemetry: the thread-local rollup collected during
        // dispatch, published as an `ivy-profile-v1` block plus explicit
        // cache provenance.
        let (verdict, mut fields, error) = match result {
            Ok((verdict, fields)) => (verdict, fields, None),
            Err(err) => ("unknown", Vec::new(), Some(err)),
        };
        let mut report = rollup.report.clone();
        report.outcome = verdict.to_string();
        report.wall_nanos = wall.as_nanos();
        let profile = Json::parse(&report.to_json_with(&[("command", cmd_tag(req.cmd))]))
            .unwrap_or(Json::Null);
        fields.push(("profile", profile));
        fields.push((
            "cache",
            Json::obj([
                ("frame_hits", Json::num(rollup.frame_hits as f64)),
                ("frame_misses", Json::num(rollup.frame_misses as f64)),
                ("sessions_built", Json::num(rollup.sessions_built as f64)),
                ("hit_rate", Json::num(rollup.frame_hit_rate())),
            ]),
        ));
        fields.push(("wall_ms", Json::num(wall.as_secs_f64() * 1e3)));

        match error {
            None => {
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                Handled {
                    response: ok_response(&req.id, verdict, fields),
                    close: false,
                }
            }
            Some(err) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                let mut resp = Json::parse(error_response(&req.id, &err).trim())
                    .expect("error responses are valid JSON");
                if let Json::Obj(map) = &mut resp {
                    map.insert("verdict".to_string(), Json::str(verdict));
                    for (k, v) in fields {
                        map.insert(k.to_string(), v);
                    }
                }
                Handled {
                    response: format!("{resp}\n"),
                    close: false,
                }
            }
        }
    }

    /// The request's effective budget under the server's caps.
    fn admission_budget(&self, req: &Request) -> Budget {
        let timeout = match (req.timeout_ms, self.config.default_timeout) {
            (Some(ms), _) => Some(Duration::from_millis(ms)),
            (None, d) => d,
        };
        let timeout = match (timeout, self.config.max_timeout) {
            (Some(t), Some(cap)) => Some(t.min(cap)),
            (None, cap) => cap,
            (t, None) => t,
        };
        match timeout {
            Some(t) => Budget::with_timeout(t),
            None => Budget::UNLIMITED,
        }
    }

    /// A per-request oracle view: shared pool, request-local budget.
    fn oracle_view(&self, req: &Request, budget: Budget) -> Arc<Oracle> {
        let mut view = self.oracle.view();
        view.set_budget(budget);
        if let Some(mi) = req.max_instances {
            let mi = match self.config.instance_cap {
                Some(cap) => mi.min(cap),
                None => mi,
            };
            view.set_instance_limit(mi);
        } else if let Some(cap) = self.config.instance_cap {
            view.set_instance_limit(view.instance_limit().min(cap));
        }
        if let Some(depth) = self.effective_bound(req) {
            view.set_mode(InstantiationMode::Bounded(depth));
        }
        Arc::new(view)
    }

    /// The request's instantiation bound: its own `bound` field, or the
    /// server-wide default.
    fn effective_bound(&self, req: &Request) -> Option<usize> {
        req.bound.or(self.config.default_bound)
    }

    /// Runs the engine for one admitted request.
    fn dispatch(&self, req: &Request, budget: Budget) -> Result<Verdict, WireError> {
        let program = self.load_model(req)?;
        let oracle = self.oracle_view(req, budget);
        match req.cmd {
            Command::Verify => {
                let inv = conjectures(&program, req)?;
                let v = Verifier::with_oracle(&program, oracle);
                match v.check(&inv).map_err(engine_error)? {
                    Inductiveness::Inductive => Ok((
                        "inductive",
                        vec![("conjectures", Json::num(inv.len() as f64))],
                    )),
                    Inductiveness::Cti(cti) => {
                        let mut fields = vec![
                            ("violation", Json::str(cti.violation.to_string())),
                            ("state", Json::str(cti.state.to_string())),
                        ];
                        if let Some(s) = &cti.successor {
                            fields.push(("successor", Json::str(s.to_string())));
                        }
                        Ok(("cti", fields))
                    }
                }
            }
            Command::Bmc => {
                let depth = req.depth.unwrap_or(3);
                let bmc = Bmc::with_oracle(&program, oracle);
                match bmc.check_safety(depth).map_err(engine_error)? {
                    None => Ok(("safe", vec![("depth", Json::num(depth as f64))])),
                    Some(trace) => Ok((
                        "trace",
                        vec![
                            ("depth", Json::num(depth as f64)),
                            ("trace", Json::str(trace_to_text(&trace))),
                        ],
                    )),
                }
            }
            Command::Houdini => {
                let candidates = match conjectures_opt(&program, req)? {
                    Some(given) => given,
                    None => {
                        let vars = req.vars.unwrap_or(2);
                        let lits = req.lits.unwrap_or(2);
                        enumerate_candidates(&program.sig, vars, lits)
                    }
                };
                let result =
                    houdini_with_oracle(&program, candidates, &oracle).map_err(engine_error)?;
                let survivors: Vec<Json> = result
                    .invariant
                    .iter()
                    .map(|c| Json::str(format!("{}: {}", c.name, c.formula)))
                    .collect();
                let verdict = if result.proves_safety {
                    "safe"
                } else {
                    "not_proved"
                };
                Ok((
                    verdict,
                    vec![
                        ("survivors", Json::Arr(survivors)),
                        ("iterations", Json::num(result.iterations as f64)),
                    ],
                ))
            }
            Command::Infer => {
                let opts = InferOptions {
                    vars_per_sort: req.vars.unwrap_or(2),
                    max_literals: req.lits.unwrap_or(2),
                    ..InferOptions::default()
                };
                let report = infer(&program, &oracle, &opts).map_err(engine_error)?;
                let invariant: Vec<Json> = report
                    .invariant
                    .iter()
                    .map(|c| Json::str(format!("{}: {}", c.name, c.formula)))
                    .collect();
                Ok((
                    report.status.tag(),
                    vec![
                        ("survivors", Json::Arr(invariant)),
                        ("generated", Json::num(report.generated as f64)),
                        ("blocked", Json::num(report.blocked as f64)),
                        ("enlargements", Json::num(report.enlargements as f64)),
                        ("iterations", Json::num(report.houdini_runs as f64)),
                    ],
                ))
            }
            Command::Generalize => {
                let inv = conjectures(&program, req)?;
                let measures: Vec<Measure> = program
                    .sig
                    .sorts()
                    .iter()
                    .map(|s| Measure::SortSize(*s))
                    .collect();
                let v = Verifier::with_oracle(&program, oracle.clone());
                let Some(cti) = v.find_minimal_cti(&inv, &measures).map_err(engine_error)? else {
                    return Ok(("inductive", Vec::new()));
                };
                let upper = PartialStructure::from_structure(&cti.state);
                let bound = req.depth.unwrap_or(2);
                let g = Generalizer::with_oracle(&program, oracle);
                match g.auto_generalize(&upper, bound).map_err(engine_error)? {
                    AutoGen::TooStrong(trace) => Ok((
                        "too_strong",
                        vec![("trace", Json::str(trace_to_text(&trace)))],
                    )),
                    AutoGen::Generalized {
                        partial,
                        conjecture,
                    } => Ok((
                        "generalized",
                        vec![
                            ("conjecture", Json::str(conjecture.to_string())),
                            ("facts", Json::num(partial.fact_count() as f64)),
                            ("violation", Json::str(cti.violation.to_string())),
                        ],
                    )),
                }
            }
            Command::Status | Command::Shutdown => unreachable!("handled before admission"),
        }
    }

    /// Loads and validates the request's model.
    fn load_model(&self, req: &Request) -> Result<Program, WireError> {
        let source = match (&req.model, &req.model_path) {
            (Some(src), _) => src.clone(),
            (None, Some(path)) => std::fs::read_to_string(path).map_err(|e| {
                WireError::new(ErrorCode::Model, format!("model_path `{path}`: {e}"))
            })?,
            (None, None) => {
                return Err(WireError::new(ErrorCode::Protocol, "missing model"));
            }
        };
        let program = parse_program(&source)
            .map_err(|e| WireError::new(ErrorCode::Model, format!("model: {e}")))?;
        let problems = check_program(&program);
        // Fragment violations (unstratified functions, ∀∃ alternations)
        // are exactly what bounded instantiation tolerates; with `bound`
        // set they are admitted, everything else still refuses the model.
        let bounded = self.effective_bound(req).is_some();
        let hard: Vec<String> = problems
            .iter()
            .filter(|p| !bounded || !p.is_fragment())
            .map(|p| p.to_string())
            .collect();
        if !hard.is_empty() {
            let mut msg = format!("model validation: {}", hard.join("; "));
            if !bounded && problems.iter().any(|p| p.is_fragment()) {
                msg.push_str(" (fragment violations can be admitted with `bound`)");
            }
            return Err(WireError::new(ErrorCode::Model, msg));
        }
        Ok(program)
    }

    /// `status`: server health, counters, and shared-cache telemetry.
    fn status(&self, req: &Request) -> Handled {
        self.counters.ok.fetch_add(1, Ordering::Relaxed);
        let (active, waiting) = self.gate.load();
        let rollup = self.oracle.rollup();
        let response = ok_response(
            &req.id,
            "ok",
            [
                (
                    "uptime_ms",
                    Json::num(self.started.elapsed().as_secs_f64() * 1e3),
                ),
                ("workers", Json::num(self.config.workers as f64)),
                ("queue", Json::num(self.config.queue as f64)),
                ("in_flight", Json::num(active as f64)),
                ("queued", Json::num(waiting as f64)),
                ("stopping", Json::Bool(self.stopping())),
                (
                    "requests",
                    Json::obj([
                        (
                            "received",
                            Json::num(self.counters.received.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "ok",
                            Json::num(self.counters.ok.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "errors",
                            Json::num(self.counters.errors.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "busy",
                            Json::num(self.counters.busy.load(Ordering::Relaxed) as f64),
                        ),
                    ]),
                ),
                (
                    "oracle",
                    Json::obj([
                        ("queries", Json::num(rollup.report.queries as f64)),
                        ("frame_hits", Json::num(rollup.frame_hits as f64)),
                        ("frame_misses", Json::num(rollup.frame_misses as f64)),
                        ("hit_rate", Json::num(rollup.frame_hit_rate())),
                        ("sessions_built", Json::num(rollup.sessions_built as f64)),
                        (
                            "pool_capacity",
                            Json::num(self.oracle.pool_capacity() as f64),
                        ),
                    ]),
                ),
            ],
        );
        Handled {
            response,
            close: false,
        }
    }

    fn refuse(&self, id: &Json, err: &WireError) -> Handled {
        let counter = if err.code == ErrorCode::Busy {
            &self.counters.busy
        } else {
            &self.counters.errors
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Handled {
            response: error_response(id, err),
            close: err.code == ErrorCode::Oversized,
        }
    }

    /// Serves connections until `shutdown` is acknowledged, then drains
    /// in-flight connections and returns.
    pub fn serve_listener(self: &Arc<Self>, listener: Listener) -> io::Result<()> {
        match listener {
            Listener::Tcp(l) => {
                l.set_nonblocking(true)?;
                self.accept_loop(|| match l.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
                        Some(Ok(Box::new(stream) as Box<dyn Conn>))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => Some(Err(e)),
                })
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                l.set_nonblocking(true)?;
                self.accept_loop(|| match l.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
                        Some(Ok(Box::new(stream) as Box<dyn Conn>))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => Some(Err(e)),
                })
            }
        }
    }

    fn accept_loop(
        self: &Arc<Self>,
        mut accept: impl FnMut() -> Option<io::Result<Box<dyn Conn>>>,
    ) -> io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            match accept() {
                Some(Ok(stream)) => {
                    let server = Arc::clone(self);
                    conns.push(std::thread::spawn(move || server.serve_conn(stream)));
                }
                Some(Err(e)) => return Err(e),
                None => {
                    conns.retain(|h| !h.is_finished());
                    if self.stopping() {
                        break;
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }

    /// One connection: read request lines, write response lines, until
    /// the peer disconnects, a protocol error forces a close, or the
    /// server drains for shutdown. A mid-line disconnect is silently
    /// dropped — the worker is released, never wedged.
    fn serve_conn(self: Arc<Self>, mut stream: Box<dyn Conn>) {
        let mut reader = LineReader::new(self.config.max_line_bytes);
        loop {
            match reader.next_line(&mut *stream) {
                Ok(LineEvent::Line(bytes)) => {
                    let handled = match String::from_utf8(bytes) {
                        Ok(line) => {
                            if line.trim().is_empty() {
                                continue; // blank keep-alive lines are ignored
                            }
                            self.handle_line(&line)
                        }
                        Err(_) => self.refuse(
                            &Json::Null,
                            &WireError::new(ErrorCode::Parse, "request line is not UTF-8"),
                        ),
                    };
                    if stream.write_all(handled.response.as_bytes()).is_err()
                        || stream.flush().is_err()
                    {
                        return; // peer went away mid-response
                    }
                    if handled.close {
                        return;
                    }
                }
                Ok(LineEvent::Oversized) => {
                    let handled = self.refuse(
                        &Json::Null,
                        &WireError::new(
                            ErrorCode::Oversized,
                            format!(
                                "request line exceeds {} bytes; closing connection",
                                self.config.max_line_bytes
                            ),
                        ),
                    );
                    let _ = stream.write_all(handled.response.as_bytes());
                    let _ = stream.flush();
                    return;
                }
                Ok(LineEvent::Eof) => return,
                Ok(LineEvent::Idle) => {
                    if self.stopping() {
                        return; // drain idle keep-alive connections
                    }
                }
                Err(_) => return,
            }
        }
    }
}

/// How often blocked reads and the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Object-safe connection stream.
trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

enum LineEvent {
    /// One complete line (newline stripped).
    Line(Vec<u8>),
    /// The line under construction exceeded the cap.
    Oversized,
    /// Clean end of stream.
    Eof,
    /// A read timeout elapsed with no data (re-check the stop flag).
    Idle,
}

/// Incremental line splitter over a raw `Read` with a size cap.
struct LineReader {
    buf: Vec<u8>,
    scanned: usize,
    max: usize,
}

impl LineReader {
    fn new(max: usize) -> LineReader {
        LineReader {
            buf: Vec::new(),
            scanned: 0,
            max,
        }
    }

    fn next_line(&mut self, stream: &mut dyn Conn) -> io::Result<LineEvent> {
        loop {
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let pos = self.scanned + pos;
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                return Ok(LineEvent::Line(line));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max {
                return Ok(LineEvent::Oversized);
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn cmd_tag(cmd: Command) -> &'static str {
    match cmd {
        Command::Verify => "verify",
        Command::Bmc => "bmc",
        Command::Houdini => "houdini",
        Command::Infer => "infer",
        Command::Generalize => "generalize",
        Command::Status => "status",
        Command::Shutdown => "shutdown",
    }
}

/// Maps an engine error onto the wire: budget exhaustion is `budget`
/// (the verdict stays `unknown`), everything else is `engine`.
fn engine_error(e: EprError) -> WireError {
    match e {
        EprError::Inconclusive(reason) => WireError::new(
            ErrorCode::Budget,
            format!("inconclusive: {reason} [stop:{}]", reason.tag()),
        ),
        other => WireError::new(ErrorCode::Engine, other.to_string()),
    }
}

/// The invariant to check: the request's conjectures, or the model's
/// safety properties.
fn conjectures(program: &Program, req: &Request) -> Result<Vec<Conjecture>, WireError> {
    Ok(match conjectures_opt(program, req)? {
        Some(given) => given,
        None => program
            .safety
            .iter()
            .map(|(label, f)| Conjecture::new(label.clone(), f.clone()))
            .collect(),
    })
}

fn conjectures_opt(program: &Program, req: &Request) -> Result<Option<Vec<Conjecture>>, WireError> {
    let _ = program;
    let Some(named) = &req.invariant else {
        return Ok(None);
    };
    let mut out = Vec::with_capacity(named.len());
    for (name, text) in named {
        let formula = parse_formula(text)
            .map_err(|e| WireError::new(ErrorCode::Model, format!("invariant `{name}`: {e}")))?;
        out.push(Conjecture::new(name.clone(), formula));
    }
    Ok(Some(out))
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("engine panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("engine panicked: {s}")
    } else {
        "engine panicked".to_string()
    }
}
