//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The `figures` binary (see `src/bin/figures.rs`) prints each table/figure;
//! the timed benches under `benches/` measure solver and procedure
//! performance and the ablations called out in DESIGN.md.

#![warn(missing_docs)]

pub mod reference;

use std::time::{Duration, Instant};

use ivy_core::{Conjecture, Measure, OracleUser, Session, SessionOutcome, SessionStats};
use ivy_rml::Program;

/// Everything the Figure 14 table needs about one protocol.
pub struct ProtocolEntry {
    /// Row label as in Figure 14.
    pub name: &'static str,
    /// The model.
    pub program: Program,
    /// The model's RML source, for clients that ship it over a wire.
    pub source: &'static str,
    /// A known-correct universal inductive invariant (target for the oracle
    /// user). The first clauses are the safety properties.
    pub invariant: Vec<Conjecture>,
    /// Minimization measures a user of this protocol would pick.
    pub measures: Vec<Measure>,
    /// BMC bound the oracle passes to auto-generalization.
    pub oracle_bound: usize,
    /// Paper-reported (S, RF, C, I, G) for side-by-side comparison.
    pub paper: (usize, usize, usize, usize, usize),
}

/// All six evaluation protocols (Section 5.1), in Figure 14 order.
pub fn protocols() -> Vec<ProtocolEntry> {
    use ivy_protocols as p;
    vec![
        ProtocolEntry {
            name: "Leader election in ring",
            program: p::leader::program(),
            source: p::leader::SOURCE,
            invariant: p::leader::invariant(),
            measures: p::leader::measures(),
            oracle_bound: 3,
            paper: (2, 5, 3, 12, 3),
        },
        ProtocolEntry {
            name: "Lock server",
            program: p::lock_server::program(),
            source: p::lock_server::SOURCE,
            invariant: p::lock_server::invariant(),
            measures: p::lock_server::measures(),
            oracle_bound: 2,
            paper: (5, 11, 3, 21, 8),
        },
        ProtocolEntry {
            name: "Distributed lock protocol",
            program: p::distributed_lock::program(),
            source: p::distributed_lock::SOURCE,
            invariant: p::distributed_lock::invariant(),
            measures: p::distributed_lock::measures(),
            oracle_bound: 2,
            paper: (2, 5, 3, 26, 12),
        },
        ProtocolEntry {
            name: "Learning switch",
            program: p::learning_switch::program(),
            source: p::learning_switch::SOURCE,
            invariant: p::learning_switch::invariant(),
            measures: p::learning_switch::measures(),
            oracle_bound: 1,
            paper: (2, 5, 11, 18, 3),
        },
        ProtocolEntry {
            name: "Database chain replication",
            program: p::db_chain::program(),
            source: p::db_chain::SOURCE,
            invariant: p::db_chain::invariant(),
            measures: p::db_chain::measures(),
            oracle_bound: 1,
            paper: (4, 13, 11, 35, 7),
        },
        ProtocolEntry {
            name: "Chord ring maintenance",
            program: p::chord::program(),
            source: p::chord::SOURCE,
            invariant: p::chord::invariant(),
            measures: p::chord::measures(),
            oracle_bound: 2,
            paper: (1, 13, 35, 46, 4),
        },
    ]
}

/// One measured row of our Figure 14 reproduction.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Protocol name.
    pub name: &'static str,
    /// Number of sorts.
    pub s: usize,
    /// Number of relation + function symbols (program variables excluded;
    /// scratch locals never count).
    pub rf: usize,
    /// Literals in the initial conjecture set (the safety properties).
    pub c: usize,
    /// Literals in the final inductive invariant the session found.
    pub i: usize,
    /// CTI/generalization iterations (the session's CTI count).
    pub g: usize,
    /// Whether the found invariant was independently re-verified inductive.
    pub verified: bool,
    /// Wall-clock for the whole session.
    pub elapsed: Duration,
    /// Paper-reported values.
    pub paper: (usize, usize, usize, usize, usize),
}

/// Runs the ideal-user (oracle) session for one protocol and measures the
/// Figure 14 quantities.
///
/// # Panics
///
/// Panics if the session errors out or fails to prove within `max_ctis` —
/// the harness treats that as a reproduction failure worth loud reporting.
pub fn figure14_row(entry: &ProtocolEntry, max_ctis: usize) -> Fig14Row {
    let start = Instant::now();
    let initial: Vec<Conjecture> = entry
        .program
        .safety
        .iter()
        .map(|(label, f)| Conjecture::new(label.clone(), f.clone()))
        .collect();
    let c: usize = initial.iter().map(|x| x.formula.literal_count()).sum();
    let target: Vec<_> = entry.invariant.iter().map(|x| x.formula.clone()).collect();
    let mut session = Session::new(&entry.program, initial, entry.measures.clone());
    let mut user = OracleUser::new(target, entry.oracle_bound);
    let outcome = session
        .run(&mut user, max_ctis)
        .unwrap_or_else(|e| panic!("{}: session error: {e}", entry.name));
    assert_eq!(
        outcome,
        SessionOutcome::Proved,
        "{}: oracle session did not converge ({:?})",
        entry.name,
        session.stats()
    );
    let stats: SessionStats = session.stats();
    let i: usize = session
        .conjectures()
        .iter()
        .map(|x| x.formula.literal_count())
        .sum();
    // Independent re-verification of the found invariant.
    let verifier = ivy_core::Verifier::new(&entry.program);
    let verified = verifier
        .check(session.conjectures())
        .map(|r| r.is_inductive())
        .unwrap_or(false);
    Fig14Row {
        name: entry.name,
        s: entry.program.sig.sorts().len(),
        rf: entry.program.sig.symbol_count(),
        c,
        i,
        g: stats.ctis,
        verified,
        elapsed: start.elapsed(),
        paper: entry.paper,
    }
}

/// Times a closure, returning its result and the elapsed wall-clock.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A criterion-free micro-benchmark harness (the build environment vendors
/// no external crates). Runs each case a fixed number of samples and prints
/// min/median/mean wall-clock in a stable, grep-friendly format.
pub mod harness {
    use std::time::{Duration, Instant};

    /// Measured timings of one benchmark case.
    #[derive(Clone, Copy, Debug)]
    pub struct Sample {
        /// Fastest observed iteration.
        pub min: Duration,
        /// Median iteration.
        pub median: Duration,
        /// Arithmetic mean over all iterations.
        pub mean: Duration,
    }

    /// Runs `f` once to warm up, then `samples` measured times.
    pub fn measure(samples: usize, mut f: impl FnMut()) -> Sample {
        f();
        let mut times: Vec<Duration> = (0..samples.max(1))
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        Sample { min, median, mean }
    }

    /// Measures and prints one `group/name` line.
    pub fn bench_case(group: &str, name: &str, samples: usize, f: impl FnMut()) -> Sample {
        let s = measure(samples, f);
        println!(
            "{group}/{name}: min {:?}  median {:?}  mean {:?}  ({samples} samples)",
            s.min, s.median, s.mean
        );
        s
    }
}
