//! Bounded-vs-full instantiation benchmark.
//!
//! For every bundled EPR protocol, verifies the known-good invariant
//! under full instantiation and under `InstantiationMode::Bounded` at a
//! sufficient depth, asserting the verdicts agree (zero divergence is
//! the acceptance bar — for a stratified signature the bounded clause
//! set at sufficient depth *is* the full clause set) and recording the
//! bounded/full overhead. Then proves the non-EPR `two_phase` protocol,
//! which full mode refuses, under its documented bound. Writes
//! machine-readable results to `BENCH_bounded.json` (or the path given
//! as the first argument). `--smoke` runs one sample per case for CI.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use ivy_bench::{harness::measure, protocols};
use ivy_core::{Oracle, Verifier};
use ivy_epr::InstantiationMode;
use ivy_protocols::two_phase;

/// Deep enough that every stratified protocol's term universe closes
/// below the bound (matches `crates/protocols/tests/bounded_diff.rs`).
const SUFFICIENT_DEPTH: usize = 4;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn oracle(mode: InstantiationMode) -> Arc<Oracle> {
    let mut o = Oracle::new();
    o.set_mode(mode);
    Arc::new(o)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let samples = if smoke { 1 } else { 3 };
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_bounded.json".to_string());

    // Any disagreement panics, so a written file always has zero
    // divergences — the field is the acceptance bar, not a tally.
    let mut rows = String::new();
    for entry in protocols() {
        let program = &entry.program;
        let invariant = &entry.invariant;
        let mut times: Vec<(&str, f64)> = Vec::new();
        for (key, mode) in [
            ("full", InstantiationMode::Full),
            ("bounded", InstantiationMode::Bounded(SUFFICIENT_DEPTH)),
        ] {
            let sample = measure(samples, || {
                let v = Verifier::with_oracle(program, oracle(mode));
                let r = v.check(invariant).expect("check succeeds");
                assert!(
                    r.is_inductive(),
                    "{} [{mode:?}]: invariant must verify",
                    entry.name
                );
            });
            println!("{}/{key}: median {:?}", entry.name, sample.median);
            times.push((key, secs(sample.median)));
        }
        let overhead = times[1].1 / times[0].1.max(1e-9);
        let _ = writeln!(
            rows,
            "    {{\"protocol\": \"{}\", \"full_s\": {:.6}, \"bounded_s\": {:.6}, \
             \"bounded_overhead\": {:.2}, \"verdicts_agree\": true}},",
            entry.name, times[0].1, times[1].1, overhead,
        );
    }

    // The non-EPR protocol: full mode must refuse it (that is the wall
    // the bounded dial replaces), bounded mode must prove it.
    let program = two_phase::program();
    let invariant = two_phase::invariant();
    let refused = Verifier::with_oracle(&program, oracle(InstantiationMode::Full))
        .check(&invariant)
        .is_err();
    assert!(refused, "two_phase: full mode must refuse a non-EPR model");
    let bound = two_phase::PROVE_BOUND;
    let sample = measure(samples, || {
        let v = Verifier::with_oracle(&program, oracle(InstantiationMode::Bounded(bound)));
        let r = v.check(&invariant).expect("bounded check succeeds");
        assert!(r.is_inductive(), "two_phase: bounded mode must prove");
    });
    println!("two_phase/bounded({bound}): median {:?}", sample.median);

    let json = format!(
        "{{\n  \"samples\": {samples},\n  \"sufficient_depth\": {SUFFICIENT_DEPTH},\n  \
         \"divergences\": 0,\n  \"median_seconds\": [\n{}  ],\n  \
         \"two_phase\": {{\"rejected_by_full\": {refused}, \"prove_bound\": {bound}, \
         \"bounded_prove_s\": {:.6}}}\n}}\n",
        rows.trim_end_matches(",\n").to_string() + "\n",
        secs(sample.median),
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("wrote {out_path}");
}
