//! Runs `ivy_core::infer` — automatic invariant synthesis from the safety
//! properties alone — on the six Figure-14 protocols and writes a
//! machine-readable `ivy-infer-bench-v1` JSON document (default
//! `BENCH_infer.json`) recording time-to-invariant and oracle query
//! throughput per protocol.
//!
//! Every proved invariant is independently re-verified inductive with a
//! fresh [`ivy_core::Verifier`], so regressions in *correctness* fail the
//! bench too. The run fails (exit 1) when fewer than four protocols are
//! proved — the ROADMAP success metric for the synthesis loop.
//!
//! ```text
//! bench_infer [--out PATH] [--timeout SECS] [--smoke]
//! ```
//!
//! `--smoke` restricts the sweep to leader election and the lock server
//! (with a proved-count gate of 2), keeping CI wall-clock small.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ivy_bench::protocols;
use ivy_core::{infer, InferOptions, InferStatus, Oracle, Verifier};
use ivy_epr::{Budget, EprError};

fn options_for(name: &str) -> InferOptions {
    let mut opts = InferOptions::default();
    // Chord's signature carries the three ring-anchor constants, which
    // multiply the template by an order of magnitude; the paper's
    // Section 5.1 seed is relation-only, and CTI-guided blocking
    // supplies the anchor-specific facts.
    if name == "Chord ring maintenance" {
        opts.include_constants = false;
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out")
        .unwrap_or("BENCH_infer.json")
        .to_string();
    let smoke = args.iter().any(|a| a == "--smoke");
    let timeout = match flag_value(&args, "--timeout").map(str::parse::<f64>) {
        None => None,
        Some(Ok(secs)) if secs >= 0.0 && secs.is_finite() => Some(secs),
        Some(_) => {
            eprintln!("error: --timeout expects a non-negative number of seconds");
            std::process::exit(2);
        }
    };

    let mut rows: Vec<String> = Vec::new();
    let mut proved = 0usize;
    let mut total = 0usize;
    for entry in protocols() {
        if smoke && !matches!(entry.name, "Leader election in ring" | "Lock server") {
            continue;
        }
        total += 1;
        let mut oracle = Oracle::new();
        // The deadline clock starts at construction, so each protocol gets
        // a fresh budget — a slow protocol must not starve the next one.
        let budget = match timeout {
            Some(secs) => Budget::with_timeout(Duration::from_secs_f64(secs)),
            None => Budget::UNLIMITED,
        };
        oracle.set_budget(budget);
        let oracle = Arc::new(oracle);
        let mut opts = options_for(entry.name);
        // Minimize CTIs with the measures a user of this protocol would
        // pick (Section 4.3) — small CTIs keep blocking clauses narrow.
        opts.measures = entry.measures.clone();
        let started = Instant::now();
        let (status, report) = match infer(&entry.program, &oracle, &opts) {
            Ok(report) => (report.status.tag(), Some(report)),
            Err(EprError::Inconclusive(reason)) => {
                eprintln!("{}: inconclusive ({reason})", entry.name);
                ("unknown", None)
            }
            Err(e) => {
                eprintln!("{}: {e}", entry.name);
                std::process::exit(2);
            }
        };
        let secs = started.elapsed().as_secs_f64();
        let (queries, invariant_size, generated, blocked, enlargements, houdini_runs) = report
            .as_ref()
            .map(|r| {
                (
                    r.queries,
                    r.invariant.len(),
                    r.generated,
                    r.blocked,
                    r.enlargements,
                    r.houdini_runs,
                )
            })
            .unwrap_or_default();
        if let Some(r) = &report {
            if r.status == InferStatus::Proved {
                // Independent re-verification: the inferred invariant must
                // be inductive and include the safety properties.
                let v = Verifier::new(&entry.program);
                let inductive = v
                    .check(&r.invariant)
                    .map(|x| x.is_inductive())
                    .unwrap_or(false);
                if !inductive {
                    eprintln!("{}: inferred invariant failed re-verification", entry.name);
                    std::process::exit(1);
                }
                proved += 1;
            }
        }
        let qps = if secs > 0.0 {
            queries as f64 / secs
        } else {
            0.0
        };
        println!(
            "{:<28} {:<14} {:>7.2}s  {:>6} queries ({:>7.1}/s)  {:>5} generated  {:>2} blocked",
            entry.name, status, secs, queries, qps, generated, blocked
        );
        rows.push(format!(
            "{{\"protocol\": \"{}\", \"status\": \"{}\", \"secs\": {:.3}, \
             \"queries\": {}, \"queries_per_sec\": {:.1}, \"generated\": {}, \
             \"blocked\": {}, \"enlargements\": {}, \"houdini_runs\": {}, \
             \"invariant_clauses\": {}}}",
            entry.name,
            status,
            secs,
            queries,
            qps,
            generated,
            blocked,
            enlargements,
            houdini_runs,
            invariant_size
        ));
    }

    let required = if smoke { 2 } else { 4 };
    let doc = format!(
        "{{\n\"schema\": \"ivy-infer-bench-v1\",\n\"proved\": {proved},\n\"total\": {total},\n\"protocols\": [\n{}\n]\n}}\n",
        rows.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out_path} ({proved}/{total} proved)");
    if proved < required {
        eprintln!("error: only {proved}/{total} protocols proved (need {required})");
        std::process::exit(1);
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
