//! Runs a single protocol's Figure 14 oracle session (development aid,
//! also handy for scripting the table row by row).
use ivy_bench::{figure14_row, protocols};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let max: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    for entry in protocols() {
        if !entry.name.to_lowercase().contains(&which.to_lowercase()) {
            continue;
        }
        eprintln!("running {} ...", entry.name);
        let row = figure14_row(&entry, max);
        println!(
            "{}: S={} RF={} C={} I={} G={} verified={} time={:.1?} (paper {:?})",
            row.name, row.s, row.rf, row.c, row.i, row.g, row.verified, row.elapsed, row.paper
        );
    }
}
