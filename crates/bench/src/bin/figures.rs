//! Regenerates every table and figure of the Ivy paper's evaluation.
//!
//! ```text
//! figures fig14        # Figure 14: the six-protocol table (S RF C I G)
//! figures fig6         # Figure 6: the leader-election invariant C0-C3
//! figures fig4         # Figure 4: the BMC error trace without unique ids
//! figures fig7 fig8 fig9   # the three CTI/generalization steps (DOT + text)
//! figures bmc-table    # Section 2.2: BMC depth sweep with wall-clock
//! figures compare      # Section 5.2: proof-effort comparison quantities
//! figures all          # everything above
//! ```

use std::time::Instant;

use ivy_bench::{figure14_row, protocols, timed};
use ivy_core::{
    trace_to_text, Bmc, Conjecture, Measure, Projection, Session, SessionOutcome, VizOptions,
};
use ivy_fol::{parse_formula, Sort};
use ivy_protocols::leader;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig14",
            "fig6",
            "fig4",
            "fig7",
            "fig8",
            "fig9",
            "bmc-table",
            "compare",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in wanted {
        match w {
            "fig14" => fig14(),
            "fig6" => fig6(),
            "fig4" => fig4(),
            "fig7" | "fig8" | "fig9" => fig789(),
            "bmc-table" => bmc_table(),
            "compare" => compare(),
            other => eprintln!("unknown figure `{other}`"),
        }
    }
}

/// Figure 14: protocols verified interactively (here: by the oracle user
/// standing in for the paper's human), measured vs. paper-reported.
fn fig14() {
    println!("== Figure 14: protocols verified interactively ==");
    println!("(measured by the ideal-user oracle session; paper values in parentheses)");
    println!(
        "{:<28} {:>6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "Protocol", "S", "RF", "C", "I", "G", "verified", "time"
    );
    for entry in protocols() {
        let row = figure14_row(&entry, 40);
        let (ps, prf, pc, pi, pg) = row.paper;
        println!(
            "{:<28} {:>2}({:>2}) {:>3}({:>2}) {:>4}({:>3}) {:>4}({:>3}) {:>4}({:>3}) {:>10} {:>8.1?}",
            row.name, row.s, ps, row.rf, prf, row.c, pc, row.i, pi, row.g, pg,
            row.verified, row.elapsed
        );
    }
}

/// Figure 6: the conjectures found for leader election by replaying the
/// paper's user moves (Figures 7-9) with a scripted user.
fn fig6() {
    println!("\n== Figure 6: leader-election invariant found interactively ==");
    let program = leader::program();
    let initial = vec![Conjecture::new(
        "C0",
        parse_formula(leader::C0).expect("C0 parses"),
    )];
    let mut session = Session::new(&program, initial, leader::measures());
    let mut user = leader::paper_user(3);
    let (outcome, elapsed) = timed(|| session.run(&mut user, 6).expect("session"));
    assert_eq!(outcome, SessionOutcome::Proved);
    for c in session.conjectures() {
        println!("  {c}");
    }
    println!(
        "  -- proved inductive after {} CTIs in {elapsed:.1?} (paper: 3 iterations)",
        session.stats().ctis
    );
}

/// Figure 4: the 4-step error trace found by BMC when `unique_ids` is
/// omitted from the leader-election model.
fn fig4() {
    println!("\n== Figure 4: BMC error trace without unique ids (bound 4) ==");
    let program = leader::program_without_unique_ids();
    let bmc = Bmc::new(&program);
    let (trace, elapsed) = timed(|| {
        bmc.check_safety(4)
            .expect("bmc")
            .expect("two leaders reachable")
    });
    print!("{}", trace_to_text(&trace));
    println!(
        "  -- found in {elapsed:.1?} ({} steps; paper shows 5 states (a)-(e))",
        trace.steps()
    );
}

/// Figures 7-9: the three CTI + generalization steps of the interactive
/// session, printed as text and DOT.
fn fig789() {
    println!("\n== Figures 7-9: CTIs and generalizations for leader election ==");
    let program = leader::program();
    let initial = vec![Conjecture::new(
        "C0",
        parse_formula(leader::C0).expect("C0 parses"),
    )];
    let mut session = Session::new(&program, initial, leader::measures());
    // A wrapper around the paper user that also prints what it sees.
    struct Printing(ivy_core::ScriptedUser, VizOptions);
    impl ivy_core::User for Printing {
        fn on_cti(
            &mut self,
            ctx: &ivy_core::SessionCtx<'_>,
            cti: &ivy_core::Cti,
        ) -> ivy_core::CtiDecision {
            println!("-- CTI {} ({}):", ctx.iteration, cti.violation);
            println!("   (a1) {}", cti.state);
            if let Some(s) = &cti.successor {
                println!("   (a2) {s}");
            }
            println!("{}", ivy_core::structure_to_dot(&cti.state, &self.1));
            self.0.on_cti(ctx, cti)
        }
        fn on_too_strong(
            &mut self,
            ctx: &ivy_core::SessionCtx<'_>,
            attempted: &ivy_fol::PartialStructure,
            trace: &ivy_core::Trace,
        ) -> ivy_core::TooStrongDecision {
            self.0.on_too_strong(ctx, attempted, trace)
        }
        fn on_proposal(
            &mut self,
            ctx: &ivy_core::SessionCtx<'_>,
            proposal: &ivy_core::Proposal,
        ) -> ivy_core::ProposalDecision {
            println!("   (b) upper bound: {}", proposal.upper_bound);
            println!("   (c) auto-generalized: {}", proposal.conjecture);
            println!("{}", ivy_core::partial_to_dot(&proposal.partial, &self.1));
            self.0.on_proposal(ctx, proposal)
        }
    }
    let opts = VizOptions::default().hide("btw").project(Projection {
        name: "next".into(),
        formula: parse_formula("forall Z:node. Z ~= X & Z ~= Y -> btw(X, Y, Z)")
            .expect("projection parses"),
        sort: Sort::new("node"),
    });
    let mut user = Printing(leader::paper_user(3), opts);
    let outcome = session.run(&mut user, 6).expect("session");
    assert_eq!(outcome, SessionOutcome::Proved);
}

/// The Section 2.2 claim: protocols debug via BMC at bounds up to ~10 "in a
/// few minutes". Sweeps the leader election model over depths and reports
/// wall-clock and grounding size.
fn bmc_table() {
    println!("\n== Section 2.2: BMC depth sweep (leader election, correct model) ==");
    println!("{:>6} {:>12} {:>12}", "bound", "result", "time");
    let program = leader::program();
    let mut bmc = Bmc::new(&program);
    bmc.set_instance_limit(50_000_000);
    for k in 0..=6 {
        let start = Instant::now();
        let out = bmc.check_safety(k).expect("bmc");
        println!(
            "{k:>6} {:>12} {:>12.1?}",
            if out.is_none() { "safe" } else { "violated" },
            start.elapsed()
        );
    }
}

/// Section 5.2 comparison quantities: model sizes in lines, interaction
/// counts, and machine-checked inductiveness replacing manual proof.
fn compare() {
    println!("\n== Section 5.2: proof-effort comparison ==");
    let lock_loc = ivy_protocols::lock_server::SOURCE
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .count();
    println!(
        "Lock server model: {lock_loc} non-comment lines (paper: ~50 lines in both Ivy and Verdi)"
    );
    println!("Verdi/Coq manual proof: ~500 lines (paper); here: 0 manual proof lines —");
    println!("inductiveness of the invariant is checked automatically:");
    for entry in protocols() {
        let verifier = ivy_core::Verifier::new(&entry.program);
        let (result, elapsed) = timed(|| verifier.check(&entry.invariant).expect("check"));
        println!(
            "  {:<28} invariant of {:>2} clauses checked inductive={} in {elapsed:.1?}",
            entry.name,
            entry.invariant.len(),
            result.is_inductive()
        );
    }
    let _ = Measure::SortSize(Sort::new("node")); // keep the import honest
}
