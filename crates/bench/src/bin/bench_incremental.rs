//! Fresh-vs-incremental benchmark for the VC pipeline.
//!
//! For every bundled protocol, times a full inductiveness check under each
//! [`QueryStrategy`], and bounded model checking with and without the
//! incremental reachability session. Writes machine-readable results to
//! `BENCH_incremental.json` (or the path given as the first argument).

use std::fmt::Write as _;
use std::time::Duration;

use ivy_bench::{harness::measure, protocols};
use ivy_core::{Bmc, QueryStrategy, Verifier};

const SAMPLES: usize = 3;
const BMC_DEPTH: usize = 2;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_incremental.json".to_string());
    let mut rows = String::new();
    for entry in protocols() {
        let program = &entry.program;
        let invariant = &entry.invariant;
        let mut times: Vec<(&str, f64)> = Vec::new();
        for (key, strategy) in [
            ("verify_fresh", QueryStrategy::Fresh),
            ("verify_session", QueryStrategy::Session),
            ("verify_parallel4", QueryStrategy::Parallel(4)),
        ] {
            let sample = measure(SAMPLES, || {
                let mut v = Verifier::new(program);
                v.set_strategy(strategy);
                let r = v.check(invariant).expect("check succeeds");
                assert!(r.is_inductive(), "{}: invariant must verify", entry.name);
            });
            println!("{}/{key}: median {:?}", entry.name, sample.median);
            times.push((key, secs(sample.median)));
        }
        for (key, incremental) in [("bmc_fresh", false), ("bmc_incremental", true)] {
            let sample = measure(SAMPLES, || {
                let mut b = Bmc::new(program);
                b.set_incremental(incremental);
                let r = b.check_safety(BMC_DEPTH).expect("bmc succeeds");
                assert!(
                    r.is_none(),
                    "{}: safety must hold to depth {BMC_DEPTH}",
                    entry.name
                );
            });
            println!("{}/{key}: median {:?}", entry.name, sample.median);
            times.push((key, secs(sample.median)));
        }
        let fields: Vec<String> = times
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.6}"))
            .collect();
        let _ = writeln!(
            rows,
            "    {{\"protocol\": \"{}\", {},\n     \"session_speedup\": {:.2}, \"bmc_speedup\": {:.2}}},",
            entry.name,
            fields.join(", "),
            times[0].1 / times[1].1,
            times[3].1 / times[4].1,
        );
    }
    let json = format!(
        "{{\n  \"samples\": {SAMPLES},\n  \"bmc_depth\": {BMC_DEPTH},\n  \"median_seconds\": [\n{}  ]\n}}\n",
        rows.trim_end_matches(",\n").to_string() + "\n"
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("wrote {out_path}");
}
