//! Frame-cache benchmark for the unified solver oracle.
//!
//! For every bundled protocol, times each engine's query load twice:
//! against a *fresh* oracle (`QueryStrategy::Fresh`, re-grounding every
//! query) and against a *warm* oracle (`QueryStrategy::Session` whose
//! frame-keyed pool was populated by a prior run, so the measured checks
//! reuse grounded sessions across queries and engines). Writes
//! machine-readable results to `BENCH_oracle.json` (or the path given as
//! the first argument). `--smoke` runs one sample per case for CI.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use ivy_bench::{harness::measure, protocols};
use ivy_core::{houdini_with_oracle, Bmc, Oracle, QueryStrategy, Verifier};

const BMC_DEPTH: usize = 2;

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn oracle(strategy: QueryStrategy) -> Arc<Oracle> {
    let mut o = Oracle::new();
    o.set_strategy(strategy);
    Arc::new(o)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let samples = if smoke { 1 } else { 3 };
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_oracle.json".to_string());
    let mut rows = String::new();
    for entry in protocols() {
        let program = &entry.program;
        let invariant = &entry.invariant;
        let mut times: Vec<(&str, f64)> = Vec::new();
        // The warm oracle persists across all measured iterations AND
        // engines: the first (unmeasured) warm-up grounds every frame, the
        // measured runs hit the pool.
        let warm = oracle(QueryStrategy::Session);
        for (key, o) in [
            ("verify_fresh", oracle(QueryStrategy::Fresh)),
            ("verify_warm", warm.clone()),
        ] {
            let sample = measure(samples, || {
                let v = Verifier::with_oracle(program, o.clone());
                let r = v.check(invariant).expect("check succeeds");
                assert!(r.is_inductive(), "{}: invariant must verify", entry.name);
            });
            println!("{}/{key}: median {:?}", entry.name, sample.median);
            times.push((key, secs(sample.median)));
        }
        for (key, o) in [
            ("bmc_fresh", oracle(QueryStrategy::Fresh)),
            ("bmc_warm", warm.clone()),
        ] {
            let sample = measure(samples, || {
                let b = Bmc::with_oracle(program, o.clone());
                let r = b.check_safety(BMC_DEPTH).expect("bmc succeeds");
                assert!(
                    r.is_none(),
                    "{}: safety must hold to depth {BMC_DEPTH}",
                    entry.name
                );
            });
            println!("{}/{key}: median {:?}", entry.name, sample.median);
            times.push((key, secs(sample.median)));
        }
        for (key, o) in [
            ("houdini_fresh", oracle(QueryStrategy::Fresh)),
            ("houdini_warm", warm.clone()),
        ] {
            let sample = measure(samples, || {
                let r =
                    houdini_with_oracle(program, invariant.clone(), &o).expect("houdini succeeds");
                assert!(r.proves_safety, "{}: invariant proves safety", entry.name);
            });
            println!("{}/{key}: median {:?}", entry.name, sample.median);
            times.push((key, secs(sample.median)));
        }
        let hit_rate = warm.rollup().frame_hit_rate();
        let fields: Vec<String> = times
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.6}"))
            .collect();
        let speedup = |fresh: usize, warm: usize| times[fresh].1 / times[warm].1.max(1e-9);
        let _ = writeln!(
            rows,
            "    {{\"protocol\": \"{}\", {},\n     \"frame_hit_rate\": {:.3}, \
             \"verify_speedup\": {:.2}, \"bmc_speedup\": {:.2}, \"houdini_speedup\": {:.2}}},",
            entry.name,
            fields.join(", "),
            hit_rate,
            speedup(0, 1),
            speedup(2, 3),
            speedup(4, 5),
        );
    }
    let json = format!(
        "{{\n  \"samples\": {samples},\n  \"bmc_depth\": {BMC_DEPTH},\n  \"median_seconds\": [\n{}  ]\n}}\n",
        rows.trim_end_matches(",\n").to_string() + "\n"
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("wrote {out_path}");
}
