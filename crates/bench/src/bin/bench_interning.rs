//! Tree-vs-interned ablation: measures wp generation, transition
//! compilation, and grounding on the six evaluation protocols against the
//! pre-interning tree-walking baselines, cross-validates that both
//! pipelines produce identical outputs, and writes the medians to
//! `BENCH_interning.json`.
//!
//! Usage: `cargo run --release -p ivy-bench --bin bench_interning`

use std::fmt::Write as _;
use std::time::Duration;

use ivy_bench::harness::measure;
use ivy_bench::reference::{
    ground_tree, rename_symbols_tree, unroll_free_tree, wp_tree, GroundSizes,
};
use ivy_epr::EprCheck;
use ivy_fol::intern::{self, Interner};
use ivy_fol::Formula;
use ivy_rml::{unroll_free, wp_id, Program};

const SAMPLES: usize = 15;

struct Case {
    key: &'static str,
    program: Program,
    invariant: Formula,
}

fn cases() -> Vec<Case> {
    use ivy_protocols as p;
    let inv = |cs: Vec<ivy_core::Conjecture>| Formula::and(cs.into_iter().map(|c| c.formula));
    vec![
        Case {
            key: "leader",
            program: p::leader::program(),
            invariant: inv(p::leader::invariant()),
        },
        Case {
            key: "lock_server",
            program: p::lock_server::program(),
            invariant: inv(p::lock_server::invariant()),
        },
        Case {
            key: "distributed_lock",
            program: p::distributed_lock::program(),
            invariant: inv(p::distributed_lock::invariant()),
        },
        Case {
            key: "learning_switch",
            program: p::learning_switch::program(),
            invariant: inv(p::learning_switch::invariant()),
        },
        Case {
            key: "db_chain",
            program: p::db_chain::program(),
            invariant: inv(p::db_chain::invariant()),
        },
        Case {
            key: "chord",
            program: p::chord::program(),
            invariant: inv(p::chord::invariant()),
        },
    ]
}

struct Pair {
    tree: Duration,
    interned: Duration,
}

impl Pair {
    fn speedup(&self) -> f64 {
        let i = self.interned.as_secs_f64();
        if i == 0.0 {
            f64::INFINITY
        } else {
            self.tree.as_secs_f64() / i
        }
    }
}

/// wp of the safety conjunction through every action body, both pipelines;
/// asserts they produce the same formula before timing.
fn bench_wp(case: &Case) -> Pair {
    let p = &case.program;
    let axiom = p.axiom();
    let post = p.safety_formula();
    // Cross-validate: the interned wp is an exact port of the tree wp.
    for a in &p.actions {
        let t = wp_tree(&p.sig, &axiom, &a.cmd, &post);
        let id = wp_id(
            &p.sig,
            intern::intern(&axiom),
            &a.cmd,
            intern::intern(&post),
        );
        assert_eq!(
            intern::resolve(id),
            t,
            "{}: interned wp diverged on action {}",
            case.key,
            a.name
        );
    }
    let tree = measure(SAMPLES, || {
        for a in &p.actions {
            std::hint::black_box(wp_tree(&p.sig, &axiom, &a.cmd, &post));
        }
    });
    let ax = intern::intern(&axiom);
    let po = intern::intern(&post);
    let interned = measure(SAMPLES, || {
        for a in &p.actions {
            std::hint::black_box(wp_id(&p.sig, ax, &a.cmd, po));
        }
    });
    Pair {
        tree: tree.median,
        interned: interned.median,
    }
}

/// One-step free unrolling (the consecution frame), both compilers; asserts
/// the interned compiler emits exactly the tree compiler's formulas.
fn bench_transition(case: &Case) -> Pair {
    let p = &case.program;
    let t = unroll_free_tree(p, 1);
    let u = unroll_free(p, 1);
    assert_eq!(
        intern::resolve(u.base),
        t.base,
        "{}: base diverged",
        case.key
    );
    assert_eq!(u.steps.len(), t.steps.len());
    for (is, ts) in u.steps.iter().zip(&t.steps) {
        assert_eq!(intern::resolve(*is), *ts, "{}: step diverged", case.key);
    }
    assert_eq!(u.maps, t.maps, "{}: vocabulary maps diverged", case.key);
    let tree = measure(SAMPLES, || {
        std::hint::black_box(unroll_free_tree(p, 1));
    });
    let interned = measure(SAMPLES, || {
        std::hint::black_box(unroll_free(p, 1));
    });
    Pair {
        tree: tree.median,
        interned: interned.median,
    }
}

/// Grounding (split, Skolemize, instantiate, Tseitin-encode — no SAT solve)
/// of the protocol's consecution query, both pipelines; asserts identical
/// universe and instantiation counts.
fn bench_grounding(case: &Case) -> Pair {
    let p = &case.program;
    let inv = &case.invariant;
    // Tree side: tree unrolling, tree renames, tree grounding.
    let t = unroll_free_tree(p, 1);
    let tree_assertions: Vec<(String, Formula)> = vec![
        ("base".into(), t.base.clone()),
        ("inv".into(), rename_symbols_tree(inv, &t.maps[0])),
        ("step".into(), t.steps[0].clone()),
        (
            "neg".into(),
            Formula::not(rename_symbols_tree(inv, &t.maps[1])),
        ),
    ];
    let tree_sizes: GroundSizes = ground_tree(&t.sig, &tree_assertions);
    // Interned side: interned unrolling, memoized renames, template replay.
    let u = unroll_free(p, 1);
    let (inv0, neg1) = Interner::with(|it| {
        let i = it.intern(inv);
        let i0 = it.rename_symbols(i, &u.maps[0]);
        let i1 = it.rename_symbols(i, &u.maps[1]);
        (i0, it.not(i1))
    });
    let ground_interned = || {
        let mut q = EprCheck::new(&u.sig).unwrap();
        q.assert_id("base", u.base).unwrap();
        q.assert_id("inv", inv0).unwrap();
        q.assert_id("step", u.steps[0]).unwrap();
        q.assert_id("neg", neg1).unwrap();
        q.ground_only().unwrap()
    };
    let stats = ground_interned();
    assert_eq!(
        (tree_sizes.universe, tree_sizes.instances),
        (stats.universe, stats.instances),
        "{}: grounding sizes diverged",
        case.key
    );
    let tree = measure(SAMPLES, || {
        std::hint::black_box(ground_tree(&t.sig, &tree_assertions));
    });
    let interned = measure(SAMPLES, || {
        std::hint::black_box(ground_interned());
    });
    Pair {
        tree: tree.median,
        interned: interned.median,
    }
}

fn main() {
    let mut json = String::from("{\n  \"samples\": ");
    let _ = write!(json, "{SAMPLES},\n  \"protocols\": {{\n");
    let all = cases();
    for (ci, case) in all.iter().enumerate() {
        eprintln!("== {} ==", case.key);
        let wp = bench_wp(case);
        eprintln!(
            "  wp:         tree {:?}  interned {:?}  ({:.2}x)",
            wp.tree,
            wp.interned,
            wp.speedup()
        );
        let tr = bench_transition(case);
        eprintln!(
            "  transition: tree {:?}  interned {:?}  ({:.2}x)",
            tr.tree,
            tr.interned,
            tr.speedup()
        );
        let gr = bench_grounding(case);
        eprintln!(
            "  grounding:  tree {:?}  interned {:?}  ({:.2}x)",
            gr.tree,
            gr.interned,
            gr.speedup()
        );
        let _ = writeln!(json, "    \"{}\": {{", case.key);
        for (name, pair) in [("wp", &wp), ("transition", &tr), ("grounding", &gr)] {
            let _ = write!(
                json,
                "      \"{name}\": {{\"tree_median_us\": {:.1}, \"interned_median_us\": {:.1}, \"speedup\": {:.2}}}",
                pair.tree.as_secs_f64() * 1e6,
                pair.interned.as_secs_f64() * 1e6,
                pair.speedup()
            );
            json.push_str(if name == "grounding" { "\n" } else { ",\n" });
        }
        json.push_str(if ci + 1 == all.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_interning.json", &json).expect("write BENCH_interning.json");
    println!("wrote BENCH_interning.json");
}
