//! Profiles the six Figure-14 protocols and writes a machine-readable
//! `ivy-profile-bench-v1` JSON document (default `BENCH_profile.json`).
//!
//! For each protocol the known-correct inductive invariant is checked
//! (initiation, safety, consecution — the deterministic workload every
//! PR re-runs), with telemetry recording on: per-phase wall time,
//! query/grounding/SAT counters, and cache hit rates. One
//! `ivy-profile-v1` object per protocol (see DESIGN.md §4e), plus the
//! verdict so regressions in *correctness* fail the profile too.
//!
//! ```text
//! bench_profile [--out PATH] [--timeout SECS]
//! ```

use std::time::{Duration, Instant};

use ivy_bench::protocols;
use ivy_epr::{Budget, EprError, QueryReport};
use ivy_telemetry as telemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = flag_value(&args, "--out")
        .unwrap_or("BENCH_profile.json")
        .to_string();
    let budget = match flag_value(&args, "--timeout").map(str::parse::<f64>) {
        None => Budget::UNLIMITED,
        Some(Ok(secs)) if secs >= 0.0 && secs.is_finite() => {
            Budget::with_timeout(Duration::from_secs_f64(secs))
        }
        Some(_) => {
            eprintln!("error: --timeout expects a non-negative number of seconds");
            std::process::exit(2);
        }
    };
    telemetry::set_enabled(true);

    let mut entries: Vec<String> = Vec::new();
    for entry in protocols() {
        telemetry::reset();
        let started = Instant::now();
        let mut verifier = ivy_core::Verifier::new(&entry.program);
        verifier.set_budget(budget);
        let (verdict, stop) = match verifier.check(&entry.invariant) {
            Ok(r) if r.is_inductive() => ("inductive", None),
            Ok(_) => ("cti", None),
            Err(EprError::Inconclusive(reason)) => ("unknown", Some(reason)),
            Err(e) => {
                eprintln!("{}: {e}", entry.name);
                std::process::exit(2);
            }
        };
        let mut report = QueryReport::from_global_counters();
        report.outcome = verdict.to_string();
        report.stop = stop;
        report.wall_nanos = started.elapsed().as_nanos();
        let (hits, misses) = ivy_fol::intern::cache_stats();
        report.intern_hits = hits;
        report.intern_misses = misses;
        println!(
            "{:<28} {:<10} {:>6} queries  {:>10.1?}",
            entry.name,
            verdict,
            report.queries,
            started.elapsed()
        );
        entries.push(report.to_json_with(&[("protocol", entry.name), ("verdict", verdict)]));
    }

    let mut doc = String::from("{\n\"schema\": \"ivy-profile-bench-v1\",\n\"protocols\": [\n");
    doc.push_str(&entries.join(","));
    doc.push_str("]\n}\n");
    if let Err(e) = std::fs::write(&out_path, doc) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out_path}");
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
