//! Load generator for the `ivy-serve` daemon.
//!
//! Replays verify requests for all six bundled protocols against a
//! server at configurable concurrency and compares three things:
//!
//! * **correctness** — every server verdict must equal the verdict of a
//!   direct in-process run of the same check (zero divergence);
//! * **warm vs cold** — p50 latency of a warm server (frame pool
//!   populated) against a cold one-shot process (fresh oracle per
//!   request, what a CLI invocation pays);
//! * **cache efficacy** — the frame-cache hit rate the server reports
//!   per response.
//!
//! By default an in-process server is started on an ephemeral TCP port
//! (so the measured path includes real sockets); `--connect ADDR`
//! targets an externally started daemon instead. Results go to
//! `BENCH_serve.json` (or the path given as the first positional
//! argument). `--smoke` shrinks the workload for CI.
//!
//! The binary exits non-zero if any acceptance property fails: verdict
//! divergence, a busy refusal at the configured concurrency, a warm p50
//! not beating the cold one-shot p50 on any protocol, or a frame-cache
//! hit rate below 70%.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ivy_bench::protocols;
use ivy_core::{Inductiveness, Oracle, Verifier};
use ivy_fol::parse_formula;
use ivy_serve::{Client, Endpoint, Json, Listener, ServeConfig, Server};

/// One measured request.
struct Obs {
    protocol: usize,
    latency_secs: f64,
    verdict: String,
    frame_hits: u64,
    frame_misses: u64,
    busy: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let take = |args: &mut Vec<String>, flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        let v = args.get(i + 1).cloned();
        args.drain(i..(i + 2).min(args.len()));
        v
    };
    let concurrency: usize = take(&mut args, "--concurrency")
        .map(|s| s.parse().expect("--concurrency N"))
        .unwrap_or(8);
    let rounds: usize = take(&mut args, "--rounds")
        .map(|s| s.parse().expect("--rounds N"))
        .unwrap_or(if smoke { 2 } else { 6 });
    let connect = take(&mut args, "--connect");
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let cold_samples = if smoke { 1 } else { 3 };

    let entries = protocols();

    // Wire requests: inline model source + the known invariant, shipped
    // as the array form. Verify locally that every conjecture's printed
    // form parses back to itself — divergence from a bad roundtrip would
    // be a bench bug, not a server bug.
    let mut requests: Vec<String> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let mut inv_items = Vec::new();
        for c in &e.invariant {
            let printed = c.formula.to_string();
            let reparsed = parse_formula(&printed)
                .unwrap_or_else(|err| panic!("{}: `{printed}` does not reparse: {err}", e.name));
            assert_eq!(
                reparsed.to_string(),
                printed,
                "{}: formula printing must roundtrip",
                e.name
            );
            inv_items.push(Json::obj([
                ("name", Json::str(c.name.clone())),
                ("formula", Json::str(printed)),
            ]));
        }
        requests.push(
            Json::obj([
                ("id", Json::num(i as f64)),
                ("cmd", Json::str("verify")),
                ("model", Json::str(e.source)),
                ("invariant", Json::Arr(inv_items)),
            ])
            .to_string(),
        );
    }

    // Reference verdicts from direct in-process runs (what the one-shot
    // CLI computes); the acceptance bar is zero divergence from these.
    let direct: Vec<String> = entries
        .iter()
        .map(|e| {
            let v = Verifier::with_oracle(&e.program, Arc::new(Oracle::new()));
            match v.check(&e.invariant).expect("direct check succeeds") {
                Inductiveness::Inductive => "inductive".to_string(),
                Inductiveness::Cti(_) => "cti".to_string(),
            }
        })
        .collect();

    // Cold one-shot baseline: a fresh server (fresh oracle, empty pool)
    // per request, like a CLI process that exits afterwards.
    let mut cold_p50 = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        let mut samples = Vec::new();
        for _ in 0..cold_samples {
            let server = Server::new(ServeConfig::default());
            let started = Instant::now();
            let handled = server.handle_line(req);
            samples.push(started.elapsed().as_secs_f64());
            let resp = Json::parse(handled.response.trim()).expect("response parses");
            assert_eq!(
                resp.get("verdict").and_then(Json::as_str),
                Some(direct[i].as_str()),
                "{}: cold verdict diverges: {}",
                entries[i].name,
                handled.response
            );
        }
        samples.sort_by(f64::total_cmp);
        cold_p50.push(percentile(&samples, 0.5));
        eprintln!("cold {}: p50 {:.1} ms", entries[i].name, cold_p50[i] * 1e3);
    }

    // The server under load: external, or in-process on an ephemeral port
    // so the measured path still crosses real sockets.
    let (endpoint, local) = match connect {
        Some(addr) => (Endpoint::parse(&addr), None),
        None => {
            let config = ServeConfig {
                workers: concurrency.max(1),
                queue: concurrency * 4,
                pool_capacity: (concurrency * 32).max(256),
                ..ServeConfig::default()
            };
            let server = Arc::new(Server::new(config));
            let listener = Listener::bind_tcp("127.0.0.1:0").expect("bind");
            let addr = listener.describe();
            let handle = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.serve_listener(listener).expect("serve"))
            };
            (Endpoint::parse(&addr), Some((server, handle)))
        }
    };

    let run_client = |tid: usize, rounds: usize, measured: bool| -> Vec<Obs> {
        let mut client = Client::connect(&endpoint).expect("connect");
        let mut out = Vec::new();
        for round in 0..rounds {
            for k in 0..requests.len() {
                // Shift each thread's starting protocol so distinct frames
                // contend for the pool at the same moment.
                let i = (k + tid + round) % requests.len();
                let started = Instant::now();
                let line = client.roundtrip(&requests[i]).expect("roundtrip");
                let latency = started.elapsed().as_secs_f64();
                if !measured {
                    continue;
                }
                let resp = Json::parse(&line).expect("response parses");
                let verdict = resp
                    .get("verdict")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let busy = resp
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    == Some("busy");
                let cache = resp.get("cache");
                let get = |k: &str| {
                    cache
                        .and_then(|c| c.get(k))
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                };
                out.push(Obs {
                    protocol: i,
                    latency_secs: latency,
                    verdict,
                    frame_hits: get("frame_hits"),
                    frame_misses: get("frame_misses"),
                    busy,
                });
            }
        }
        out
    };

    // Warm-up at full concurrency (unmeasured): populates the shared
    // pool with every frame each worker thread will need.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|tid| scope.spawn(move || run_client(tid, 1, false)))
            .collect();
        for h in handles {
            h.join().expect("warm-up client");
        }
    });

    // Measured phase.
    let observations = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        let observations = &observations;
        let handles: Vec<_> = (0..concurrency)
            .map(|tid| {
                scope.spawn(move || {
                    let obs = run_client(tid, rounds, true);
                    observations.lock().unwrap().extend(obs);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("load client");
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let observations = observations.into_inner().unwrap();

    // Warm-latency phase: one idle client against the (still warm)
    // server. This is the number a cold one-shot run competes with — the
    // concurrent phase above measures saturated-throughput latency, which
    // includes CPU contention both setups would share.
    let warm_solo = run_client(0, cold_samples.max(3), true);

    if let Some((server, handle)) = local {
        server.request_stop();
        handle.join().expect("server thread");
    }

    // Aggregate.
    let total = observations.len();
    let busy = observations.iter().filter(|o| o.busy).count();
    let mut divergence = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut rows = String::new();
    for (i, e) in entries.iter().enumerate() {
        let mut lat: Vec<f64> = observations
            .iter()
            .filter(|o| o.protocol == i)
            .map(|o| o.latency_secs)
            .collect();
        lat.sort_by(f64::total_cmp);
        let n = lat.len();
        let load_p50 = percentile(&lat, 0.5);
        let load_p99 = percentile(&lat, 0.99);
        let mut solo: Vec<f64> = warm_solo
            .iter()
            .filter(|o| o.protocol == i)
            .map(|o| o.latency_secs)
            .collect();
        solo.sort_by(f64::total_cmp);
        let warm_p50 = percentile(&solo, 0.5);
        let all = || {
            observations
                .iter()
                .chain(warm_solo.iter())
                .filter(|o| o.protocol == i)
        };
        let hits: u64 = all().map(|o| o.frame_hits).sum();
        let misses: u64 = all().map(|o| o.frame_misses).sum();
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let wrong = all().filter(|o| o.verdict != direct[i]).count();
        divergence += wrong;
        let speedup = cold_p50[i] / warm_p50;
        eprintln!(
            "warm {}: p50 {:.1} ms ({:.1}x vs cold), loaded p50 {:.1} ms / p99 {:.1} ms, \
             hit rate {:.0}% ({n} loaded reqs)",
            e.name,
            warm_p50 * 1e3,
            speedup,
            load_p50 * 1e3,
            load_p99 * 1e3,
            hit_rate * 100.0,
        );
        if warm_p50 >= cold_p50[i] {
            failures.push(format!(
                "{}: warm p50 {:.2} ms does not beat cold p50 {:.2} ms",
                e.name,
                warm_p50 * 1e3,
                cold_p50[i] * 1e3
            ));
        }
        if hit_rate < 0.7 {
            failures.push(format!(
                "{}: frame-cache hit rate {:.0}% below 70%",
                e.name,
                hit_rate * 100.0
            ));
        }
        let _ = write!(
            rows,
            "{}    {{\"name\": {:?}, \"loaded_requests\": {n}, \"verdict\": {:?}, \
             \"cold_p50_ms\": {:.3}, \"warm_p50_ms\": {:.3}, \"loaded_p50_ms\": {:.3}, \
             \"loaded_p99_ms\": {:.3}, \"speedup\": {:.2}, \"frame_cache_hit_rate\": {:.4}}}",
            if i == 0 { "" } else { ",\n" },
            e.name,
            direct[i],
            cold_p50[i] * 1e3,
            warm_p50 * 1e3,
            load_p50 * 1e3,
            load_p99 * 1e3,
            speedup,
            hit_rate
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"ivy-bench-serve-v1\",\n  \"concurrency\": {concurrency},\n  \
         \"rounds\": {rounds},\n  \"requests\": {total},\n  \"wall_secs\": {wall:.3},\n  \
         \"throughput_rps\": {:.1},\n  \"busy\": {busy},\n  \"divergence\": {divergence},\n  \
         \"protocols\": [\n{rows}\n  ]\n}}\n",
        total as f64 / wall
    );
    std::fs::write(&out_path, &json).expect("write results");
    eprintln!(
        "{total} requests in {wall:.2}s ({:.1} req/s) at concurrency {concurrency} -> {out_path}",
        total as f64 / wall
    );

    if divergence > 0 {
        failures.push(format!("{divergence} verdict(s) diverged from direct runs"));
    }
    if busy > 0 {
        failures.push(format!(
            "{busy} busy refusal(s) at the configured concurrency"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
