//! Pre-interning tree-walking baselines for the `bench_interning` ablation.
//!
//! These are faithful copies of the formula-tree implementations that
//! `ivy-rml` and `ivy-epr` shipped before the hash-consed IR landed: `wp`
//! over `subst::reference`, the guarded-path transition compiler over tree
//! renames, and the grounding pipeline over per-tuple tree Tseitin encoding.
//! They exist so the benchmark compares the interned pipeline against the
//! real historical baseline rather than against itself through the
//! delegating tree APIs (which now route through the interner).

use std::collections::{BTreeMap, BTreeSet};

use ivy_epr::{ensure_inhabited, Encoder, TermTable};
use ivy_fol::subst::reference::{rewrite_function, rewrite_relation, subst_constant};
use ivy_fol::subst::{all_var_names, fresh_name};
use ivy_fol::xform::Block;
use ivy_fol::{eliminate_ite, nnf, skolemize, Binding, Formula, Signature, Sort, Sym, Term};
use ivy_rml::{paths, update_params, Cmd, Path, Program, SymMap};

/// Computes `wp(cmd, post)` exactly as the pre-interning implementation did:
/// every substitution walks and rebuilds the formula tree.
///
/// # Panics
///
/// Panics if a havocked variable is not a declared program variable.
pub fn wp_tree(sig: &Signature, axiom: &Formula, cmd: &Cmd, post: &Formula) -> Formula {
    match cmd {
        Cmd::Skip => post.clone(),
        Cmd::Abort => Formula::False,
        Cmd::UpdateRel { rel, params, body } => {
            let target = Formula::implies(axiom.clone(), post.clone());
            rewrite_relation(&target, rel, params, body)
        }
        Cmd::UpdateFun { fun, params, body } => {
            let target = Formula::implies(axiom.clone(), post.clone());
            rewrite_function(&target, fun, params, body)
        }
        Cmd::Havoc(v) => {
            let decl = sig
                .function(v)
                .unwrap_or_else(|| panic!("havoc of undeclared variable `{v}`"));
            assert!(decl.is_constant(), "havoc target `{v}` is not a variable");
            let target = Formula::implies(axiom.clone(), post.clone());
            let mut used: BTreeSet<Sym> = target.free_vars();
            all_var_names(&target, &mut used);
            let x = fresh_name(&heading_var(v), &mut used);
            let substituted = subst_constant(&target, v, &Term::Var(x));
            Formula::forall([Binding::new(x, decl.ret)], substituted)
        }
        Cmd::Assume(phi) => Formula::implies(phi.clone(), post.clone()),
        Cmd::Seq(cmds) => {
            let mut q = post.clone();
            for c in cmds.iter().rev() {
                q = wp_tree(sig, axiom, c, &q);
            }
            q
        }
        Cmd::Choice(cmds) => Formula::and(cmds.iter().map(|c| wp_tree(sig, axiom, c, post))),
    }
}

fn heading_var(v: &Sym) -> String {
    let mut s: String = v.as_str().to_string();
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    format!("{s}_h")
}

/// Tree-walking symbol rename (the pre-interning `rename_symbols`).
pub fn rename_symbols_tree(f: &Formula, map: &SymMap) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Rel(r, args) => Formula::Rel(
            *map.get(r).unwrap_or(r),
            args.iter().map(|t| rename_term_tree(t, map)).collect(),
        ),
        Formula::Eq(a, b) => Formula::Eq(rename_term_tree(a, map), rename_term_tree(b, map)),
        Formula::Not(g) => Formula::Not(Box::new(rename_symbols_tree(g, map))),
        Formula::And(fs) => Formula::And(fs.iter().map(|g| rename_symbols_tree(g, map)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| rename_symbols_tree(g, map)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename_symbols_tree(a, map)),
            Box::new(rename_symbols_tree(b, map)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(rename_symbols_tree(a, map)),
            Box::new(rename_symbols_tree(b, map)),
        ),
        Formula::Forall(bs, g) => {
            Formula::Forall(bs.clone(), Box::new(rename_symbols_tree(g, map)))
        }
        Formula::Exists(bs, g) => {
            Formula::Exists(bs.clone(), Box::new(rename_symbols_tree(g, map)))
        }
    }
}

fn rename_term_tree(t: &Term, map: &SymMap) -> Term {
    match t {
        Term::Var(_) => t.clone(),
        Term::App(f, args) => Term::App(
            *map.get(f).unwrap_or(f),
            args.iter().map(|a| rename_term_tree(a, map)).collect(),
        ),
        Term::Ite(c, a, b) => Term::Ite(
            Box::new(rename_symbols_tree(c, map)),
            Box::new(rename_term_tree(a, map)),
            Box::new(rename_term_tree(b, map)),
        ),
    }
}

/// A `k`-step unrolling compiled entirely over formula trees — the
/// pre-interning [`ivy_rml::Unrolling`], field for field.
#[derive(Clone, Debug)]
pub struct TreeUnrolling {
    /// Versioned signature.
    pub sig: Signature,
    /// Axioms plus init transition.
    pub base: Formula,
    /// Vocabulary of each loop-head state.
    pub maps: Vec<SymMap>,
    /// Transition formula per step.
    pub steps: Vec<Formula>,
    /// Labeled path formulas per step.
    pub step_paths: Vec<Vec<(String, Formula)>>,
    /// Aborting-init error formula.
    pub init_error: Formula,
    /// Labeled aborting-body error formulas per step.
    pub step_errors: Vec<Vec<(String, Formula)>>,
    /// Aborting-final error formula per loop-head state.
    pub final_errors: Vec<Formula>,
}

/// Tree-walking transition compilation (the pre-interning `unroll`).
///
/// # Panics
///
/// Panics on invalid programs (undeclared symbols).
pub fn unroll_tree(program: &Program, k: usize) -> TreeUnrolling {
    unroll_tree_inner(program, k, true)
}

/// Tree-walking [`ivy_rml::unroll_free`].
pub fn unroll_free_tree(program: &Program, k: usize) -> TreeUnrolling {
    unroll_tree_inner(program, k, false)
}

fn unroll_tree_inner(program: &Program, k: usize, with_init: bool) -> TreeUnrolling {
    let mut ctx = Ctx {
        sig: program.sig.clone(),
        axiom: program.axiom(),
        counter: 0,
    };
    let identity: SymMap = program
        .sig
        .relations()
        .map(|(s, _)| (*s, *s))
        .chain(program.sig.functions().map(|(s, _)| (*s, *s)))
        .collect();

    let mut parts = vec![ctx.axiom.clone()];
    let (init_error, map0) = if with_init {
        let init_paths = paths(&program.init);
        let normal_init: Vec<&Path> = init_paths.iter().filter(|p| !p.aborts).collect();
        let abort_init: Vec<&Path> = init_paths.iter().filter(|p| p.aborts).collect();
        let (init_formula, map0) = ctx.compile_phase(&normal_init, &identity, "i");
        parts.push(init_formula);
        let init_error = Formula::or(
            abort_init
                .iter()
                .map(|p| ctx.compile_error_path(p, &identity)),
        );
        (init_error, map0)
    } else {
        (Formula::False, identity.clone())
    };

    let body_paths: Vec<(String, Path)> = program
        .actions
        .iter()
        .flat_map(|a| paths(&a.cmd).into_iter().map(move |p| (a.name.clone(), p)))
        .collect();
    let mut maps = vec![map0];
    let mut steps = Vec::with_capacity(k);
    let mut step_paths = Vec::with_capacity(k);
    let mut step_errors = Vec::with_capacity(k);
    let mut final_errors = Vec::with_capacity(k + 1);
    for j in 0..k {
        let in_map = maps[j].clone();
        let normal: Vec<&Path> = body_paths
            .iter()
            .filter(|(_, p)| !p.aborts)
            .map(|(_, p)| p)
            .collect();
        let (labeled, out_map) =
            ctx.compile_phase_labeled(&body_paths, &normal, &in_map, &format!("{}", j + 1));
        steps.push(Formula::or(labeled.iter().map(|(_, f)| f.clone())));
        step_paths.push(labeled);
        let errors: Vec<(String, Formula)> = body_paths
            .iter()
            .filter(|(_, p)| p.aborts)
            .map(|(name, p)| (name.clone(), ctx.compile_error_path(p, &in_map)))
            .collect();
        step_errors.push(errors);
        maps.push(out_map);
    }
    let final_paths = paths(&program.final_cmd);
    for map in &maps {
        let err = Formula::or(
            final_paths
                .iter()
                .filter(|p| p.aborts)
                .map(|p| ctx.compile_error_path(p, map)),
        );
        final_errors.push(err);
    }
    TreeUnrolling {
        sig: ctx.sig,
        base: Formula::and(parts),
        maps,
        steps,
        step_paths,
        init_error,
        step_errors,
        final_errors,
    }
}

struct Ctx {
    sig: Signature,
    axiom: Formula,
    counter: usize,
}

impl Ctx {
    fn fresh_version(&mut self, base: &Sym, tag: &str) -> Sym {
        loop {
            let name = Sym::new(format!("{base}__{tag}_{}", self.counter));
            self.counter += 1;
            if self.sig.relation(&name).is_some() || self.sig.function(&name).is_some() {
                continue;
            }
            if let Some(args) = self.sig.relation(base).map(<[Sort]>::to_vec) {
                self.sig.add_relation(name, args).expect("fresh name");
            } else {
                let decl = self
                    .sig
                    .function(base)
                    .unwrap_or_else(|| panic!("unknown symbol `{base}`"))
                    .clone();
                self.sig
                    .add_function(name, decl.args, decl.ret)
                    .expect("fresh name");
            }
            return name;
        }
    }

    fn compile_phase(&mut self, paths: &[&Path], in_map: &SymMap, tag: &str) -> (Formula, SymMap) {
        let labeled: Vec<(String, Path)> = paths
            .iter()
            .map(|p| (String::new(), (*p).clone()))
            .collect();
        let refs: Vec<&Path> = paths.to_vec();
        let (out, map) = self.compile_phase_labeled(&labeled, &refs, in_map, tag);
        (Formula::or(out.into_iter().map(|(_, f)| f)), map)
    }

    fn compile_phase_labeled(
        &mut self,
        labeled: &[(String, Path)],
        normal: &[&Path],
        in_map: &SymMap,
        tag: &str,
    ) -> (Vec<(String, Formula)>, SymMap) {
        let mut updated: BTreeSet<Sym> = BTreeSet::new();
        for p in normal {
            for a in &p.atoms {
                updated.extend(a.modified_symbols());
            }
        }
        let mut out_map = in_map.clone();
        for sym in &updated {
            let v = self.fresh_version(sym, tag);
            out_map.insert(*sym, v);
        }
        let mut out = Vec::new();
        for (name, p) in labeled {
            if p.aborts {
                continue;
            }
            let f = self.compile_path(p, in_map, &out_map, &updated, tag);
            out.push((name.clone(), f));
        }
        if out.is_empty() {
            out.push((String::new(), Formula::False));
        }
        (out, out_map)
    }

    fn compile_path(
        &mut self,
        path: &Path,
        in_map: &SymMap,
        out_map: &SymMap,
        updated: &BTreeSet<Sym>,
        tag: &str,
    ) -> Formula {
        let last_write: BTreeMap<Sym, usize> = path
            .atoms
            .iter()
            .enumerate()
            .flat_map(|(i, a)| a.modified_symbols().into_iter().map(move |s| (s, i)))
            .collect();
        let mut cur = in_map.clone();
        let mut parts = Vec::new();
        for (i, atom) in path.atoms.iter().enumerate() {
            match atom {
                Cmd::Assume(phi) => parts.push(rename_symbols_tree(phi, &cur)),
                Cmd::UpdateRel { rel, params, body } => {
                    let body = rename_symbols_tree(body, &cur);
                    let target = self.version_for(rel, i, &last_write, out_map, tag);
                    let arg_sorts = self.sig.relation(rel).expect("validated program").to_vec();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&arg_sorts)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let lhs = Formula::rel(target, params.iter().map(|p| Term::Var(*p)));
                    parts.push(Formula::forall(bindings, Formula::iff(lhs, body)));
                    cur.insert(*rel, target);
                    self.push_axiom_if_touched(rel, &cur, &mut parts);
                }
                Cmd::UpdateFun { fun, params, body } => {
                    let body = rename_term_tree(body, &cur);
                    let target = self.version_for(fun, i, &last_write, out_map, tag);
                    let decl = self.sig.function(fun).expect("validated program").clone();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&decl.args)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let lhs = Term::app(target, params.iter().map(|p| Term::Var(*p)));
                    parts.push(Formula::forall(bindings, Formula::eq(lhs, body)));
                    cur.insert(*fun, target);
                    self.push_axiom_if_touched(fun, &cur, &mut parts);
                }
                Cmd::Havoc(v) => {
                    let target = self.version_for(v, i, &last_write, out_map, tag);
                    cur.insert(*v, target);
                    self.push_axiom_if_touched(v, &cur, &mut parts);
                }
                other => unreachable!("non-atomic command {other} in path"),
            }
        }
        for sym in updated {
            if cur[sym] == out_map[sym] {
                continue;
            }
            parts.push(self.frame_equality(sym, &cur[sym], &out_map[sym]));
        }
        Formula::and(parts)
    }

    fn version_for(
        &mut self,
        sym: &Sym,
        i: usize,
        last_write: &BTreeMap<Sym, usize>,
        out_map: &SymMap,
        tag: &str,
    ) -> Sym {
        if last_write.get(sym) == Some(&i) {
            out_map[sym]
        } else {
            self.fresh_version(sym, &format!("{tag}t"))
        }
    }

    fn push_axiom_if_touched(&self, sym: &Sym, cur: &SymMap, parts: &mut Vec<Formula>) {
        if self.axiom.mentions_symbol(sym) {
            parts.push(rename_symbols_tree(&self.axiom, cur));
        }
    }

    fn frame_equality(&self, sym: &Sym, from: &Sym, to: &Sym) -> Formula {
        if let Some(arg_sorts) = self.sig.relation(sym).map(<[Sort]>::to_vec) {
            let (params, bindings) = update_params(&arg_sorts);
            let args: Vec<Term> = params.iter().map(|p| Term::Var(*p)).collect();
            Formula::forall(
                bindings,
                Formula::iff(Formula::rel(*to, args.clone()), Formula::rel(*from, args)),
            )
        } else {
            let decl = self.sig.function(sym).expect("known symbol").clone();
            let (params, bindings) = update_params(&decl.args);
            let args: Vec<Term> = params.iter().map(|p| Term::Var(*p)).collect();
            Formula::forall(
                bindings,
                Formula::eq(Term::app(*to, args.clone()), Term::app(*from, args)),
            )
        }
    }

    fn compile_error_path(&mut self, path: &Path, in_map: &SymMap) -> Formula {
        debug_assert!(path.aborts);
        let mut cur = in_map.clone();
        let mut parts = Vec::new();
        for atom in &path.atoms {
            match atom {
                Cmd::Assume(phi) => parts.push(rename_symbols_tree(phi, &cur)),
                Cmd::UpdateRel { rel, params, body } => {
                    let body = rename_symbols_tree(body, &cur);
                    let target = self.fresh_version(rel, "e");
                    let arg_sorts = self.sig.relation(rel).expect("validated program").to_vec();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&arg_sorts)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let lhs = Formula::rel(target, params.iter().map(|p| Term::Var(*p)));
                    parts.push(Formula::forall(bindings, Formula::iff(lhs, body)));
                    cur.insert(*rel, target);
                    self.push_axiom_if_touched(rel, &cur, &mut parts);
                }
                Cmd::UpdateFun { fun, params, body } => {
                    let body = rename_term_tree(body, &cur);
                    let target = self.fresh_version(fun, "e");
                    let decl = self.sig.function(fun).expect("validated program").clone();
                    let bindings: Vec<Binding> = params
                        .iter()
                        .zip(&decl.args)
                        .map(|(p, s)| Binding::new(*p, *s))
                        .collect();
                    let lhs = Term::app(target, params.iter().map(|p| Term::Var(*p)));
                    parts.push(Formula::forall(bindings, Formula::eq(lhs, body)));
                    cur.insert(*fun, target);
                    self.push_axiom_if_touched(fun, &cur, &mut parts);
                }
                Cmd::Havoc(v) => {
                    let target = self.fresh_version(v, "e");
                    cur.insert(*v, target);
                    self.push_axiom_if_touched(v, &cur, &mut parts);
                }
                other => unreachable!("non-atomic command {other} in path"),
            }
        }
        Formula::and(parts)
    }
}

/// Size metrics of one grounding run, for cross-validating the tree and
/// interned pipelines against each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroundSizes {
    /// Ground terms in the universe.
    pub universe: usize,
    /// Universal instantiations performed.
    pub instances: u64,
}

/// Runs the pre-interning grounding pipeline (tree split, tree Skolemize,
/// per-tuple tree Tseitin encoding) on labeled tree assertions, stopping
/// before the SAT solve — the tree counterpart of
/// [`ivy_epr::EprCheck::ground_only`].
///
/// # Panics
///
/// Panics when an assertion leaves `∃*∀*` (the benchmark inputs are all
/// valid EPR queries).
pub fn ground_tree(sig: &Signature, assertions: &[(String, Formula)]) -> GroundSizes {
    let mut work_sig = sig.clone();
    let mut guard_counter = 0usize;
    let mut ground_jobs: Vec<Vec<(Vec<Binding>, Formula)>> = Vec::new();
    for (_, f) in assertions {
        let f = eliminate_ite(f);
        let mut pieces = Vec::new();
        split_tree(
            &nnf(&f),
            Vec::new(),
            &mut work_sig,
            &mut guard_counter,
            &mut pieces,
        );
        let mut jobs = Vec::new();
        for piece in pieces {
            let sk = skolemize(&piece, &mut work_sig).expect("benchmark queries stay in EPR");
            let bindings: Vec<Binding> = sk
                .universal
                .prefix
                .iter()
                .flat_map(|b| match b {
                    Block::Forall(bs) => bs.clone(),
                    Block::Exists(_) => unreachable!("skolemize leaves only universals"),
                })
                .collect();
            for conjunct in sk.universal.matrix.conjuncts() {
                let fv = conjunct.free_vars();
                let needed: Vec<Binding> = bindings
                    .iter()
                    .filter(|b| fv.contains(&b.var))
                    .cloned()
                    .collect();
                jobs.push((needed, conjunct.clone()));
            }
        }
        ground_jobs.push(jobs);
    }
    ensure_inhabited(&mut work_sig);
    let table = TermTable::build(&work_sig);
    let mut instances: u64 = 0;
    for jobs in &ground_jobs {
        for (bindings, _) in jobs {
            let mut count: u64 = 1;
            for b in bindings {
                count = count.saturating_mul(table.of_sort(&b.sort).len() as u64);
            }
            instances = instances.saturating_add(count);
        }
    }
    let universe = table.len();
    let mut enc = Encoder::new(table);
    for jobs in &ground_jobs {
        let guard = enc.fresh_var().pos();
        for (bindings, matrix) in jobs {
            instantiate_tree(&mut enc, guard, bindings, matrix);
        }
    }
    GroundSizes {
        universe,
        instances,
    }
}

fn instantiate_tree(
    enc: &mut Encoder,
    guard: ivy_sat::Lit,
    bindings: &[Binding],
    matrix: &Formula,
) {
    fn go(
        enc: &mut Encoder,
        guard: ivy_sat::Lit,
        bindings: &[Binding],
        matrix: &Formula,
        env: &mut Vec<(Sym, usize)>,
    ) {
        if env.len() == bindings.len() {
            let root = enc.encode(matrix, env);
            enc.add_clause([!guard, root]);
            return;
        }
        let b = &bindings[env.len()];
        let candidates: Vec<usize> = enc.table().of_sort(&b.sort).to_vec();
        for t in candidates {
            env.push((b.var, t));
            go(enc, guard, bindings, matrix, env);
            env.pop();
        }
    }
    go(enc, guard, bindings, matrix, &mut Vec::new());
}

/// The pre-interning definitional splitting over formula trees.
fn split_tree(
    f: &Formula,
    guard: Vec<Formula>,
    sig: &mut Signature,
    counter: &mut usize,
    out: &mut Vec<Formula>,
) {
    match f {
        Formula::And(fs) => {
            for g in fs {
                split_tree(g, guard.clone(), sig, counter, out);
            }
        }
        Formula::Forall(bs, body) => {
            if let Formula::And(cs) = body.as_ref() {
                for c in cs {
                    let fv = c.free_vars();
                    let needed: Vec<Binding> =
                        bs.iter().filter(|b| fv.contains(&b.var)).cloned().collect();
                    split_tree(
                        &Formula::forall(needed, c.clone()),
                        guard.clone(),
                        sig,
                        counter,
                        out,
                    );
                }
            } else {
                emit_piece_tree(f.clone(), guard, out);
            }
        }
        Formula::Or(fs) => {
            let complex = |g: &Formula| {
                matches!(
                    g,
                    Formula::And(_) | Formula::Forall(..) | Formula::Exists(..) | Formula::Or(_)
                )
            };
            if fs.iter().filter(|g| complex(g)).count() <= 1 {
                emit_piece_tree(f.clone(), guard, out);
                return;
            }
            let mut disjuncts = Vec::with_capacity(fs.len());
            for g in fs {
                if complex(g) {
                    let name = loop {
                        let candidate = Sym::new(format!("split__{counter}"));
                        *counter += 1;
                        if sig.relation(&candidate).is_none() && sig.function(&candidate).is_none()
                        {
                            break candidate;
                        }
                    };
                    sig.add_relation(name, Vec::<Sort>::new())
                        .expect("fresh guard name");
                    let guard_atom = Formula::rel(name, Vec::<Term>::new());
                    disjuncts.push(guard_atom.clone());
                    let mut inner_guard = guard.clone();
                    inner_guard.push(Formula::not(guard_atom));
                    split_tree(g, inner_guard, sig, counter, out);
                } else {
                    disjuncts.push(g.clone());
                }
            }
            emit_piece_tree(Formula::or(disjuncts), guard, out);
        }
        _ => emit_piece_tree(f.clone(), guard, out),
    }
}

fn emit_piece_tree(f: Formula, guard: Vec<Formula>, out: &mut Vec<Formula>) {
    if guard.is_empty() {
        out.push(f);
    } else {
        let mut parts = guard;
        parts.push(f);
        out.push(Formula::or(parts));
    }
}
