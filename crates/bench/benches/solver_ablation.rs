//! Ablation: the CDCL solver versus the reference DPLL solver, on the
//! pigeonhole family (hard UNSAT) and satisfiable random 3-SAT — plus the
//! learnt-clause-cap ablation (`max_learnts` scaled to `clauses / 3` versus
//! the historical fixed 1000).

use ivy_bench::harness::bench_case;
use ivy_sat::{solve_dpll, Cnf, SolveResult, Var};

fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::new();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_var()).collect())
        .collect();
    for row in &p {
        cnf.add_clause(row.iter().map(|v| v.pos()));
    }
    for a in 0..pigeons {
        for b in (a + 1)..pigeons {
            for (pa, pb) in p[a].iter().zip(&p[b]) {
                cnf.add_clause([pa.neg(), pb.neg()]);
            }
        }
    }
    cnf
}

fn random_3sat(vars: usize, clauses: usize, mut seed: u64) -> Cnf {
    let mut cnf = Cnf::new();
    let vs: Vec<Var> = (0..vars).map(|_| cnf.new_var()).collect();
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as usize
    };
    for _ in 0..clauses {
        let lits: Vec<_> = (0..3)
            .map(|_| vs[next() % vars].lit(next() % 2 == 0))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

/// A hard UNSAT pigeonhole core buried in a large satisfiable problem (an
/// implication chain over fresh variables) — the shape of EPR groundings,
/// where the clause database dwarfs the refutation core. With the fixed cap
/// the solver may keep at most 1000 learnts; scaling raises the cap to
/// `problem_clauses / 3`.
fn padded_pigeonhole(n: usize, pad: usize) -> Cnf {
    let mut cnf = pigeonhole(n, n - 1);
    let mut prev = cnf.new_var();
    for _ in 0..pad {
        let v = cnf.new_var();
        cnf.add_clause([prev.neg(), v.pos()]);
        prev = v;
    }
    cnf
}

fn main() {
    for n in [6usize, 7, 8] {
        let cnf = pigeonhole(n, n - 1);
        bench_case(
            "sat_cdcl_vs_dpll",
            &format!("cdcl_pigeonhole/{n}"),
            10,
            || assert!(cnf.solve().is_none()),
        );
        if n <= 7 {
            bench_case(
                "sat_cdcl_vs_dpll",
                &format!("dpll_pigeonhole/{n}"),
                10,
                || assert!(solve_dpll(&cnf).is_none()),
            );
        }
    }
    let sat = random_3sat(60, 200, 42);
    bench_case("sat_cdcl_vs_dpll", "cdcl_random3sat_60v", 10, || {
        assert!(sat.solve().is_some())
    });
    bench_case("sat_cdcl_vs_dpll", "dpll_random3sat_60v", 10, || {
        assert!(solve_dpll(&sat).is_some())
    });
    let padded = padded_pigeonhole(8, 12_000);
    for scaled in [true, false] {
        let name = if scaled {
            "scaled_clauses_div3"
        } else {
            "fixed_1000"
        };
        bench_case("sat_learnt_scaling", name, 5, || {
            let mut s = padded.to_solver();
            s.set_learnt_scaling(scaled);
            assert!(matches!(s.solve(), SolveResult::Unsat));
        });
    }
}
