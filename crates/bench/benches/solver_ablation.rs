//! Ablation of the flat-arena CDCL feature set (DESIGN.md §4g).
//!
//! Two tiers of measurement, both written as machine-readable JSON to
//! `BENCH_solver.json` (or the path given as the first argument):
//!
//! * **features** — one row per CDCL feature. The arena row races the
//!   frozen pre-refactor boxed-clause solver (`ivy_sat::legacy`) against
//!   the arena solver under the seed-equivalent `SolverConfig::baseline()`
//!   on SAT-level instances; the flat-CNF, LBD-reduction, minimization,
//!   chronological backtracking, and portfolio rows each toggle one feature
//!   on the learning-switch verification load (fresh strategy), the
//!   headline workload named by the experiment plan.
//! * **protocols** — all six evaluation protocols verified fresh under the
//!   all-off baseline and the full default config, so regressions anywhere
//!   in the suite are visible, with learning switch flagged as the
//!   headline row.
//!
//! `--smoke` runs one sample per case for CI.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use ivy_bench::{harness::measure, protocols};
use ivy_core::{Oracle, QueryStrategy, Verifier};
use ivy_epr::SolverConfig;
use ivy_sat::{legacy, Cnf, SolveResult, Solver, Var};

fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::new();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.new_var()).collect())
        .collect();
    for row in &p {
        cnf.add_clause(row.iter().map(|v| v.pos()));
    }
    for a in 0..pigeons {
        for b in (a + 1)..pigeons {
            for (pa, pb) in p[a].iter().zip(&p[b]) {
                cnf.add_clause([pa.neg(), pb.neg()]);
            }
        }
    }
    cnf
}

/// A hard UNSAT pigeonhole core buried in a large satisfiable implication
/// chain — the shape of EPR groundings, where the clause database dwarfs
/// the refutation core.
fn padded_pigeonhole(n: usize, pad: usize) -> Cnf {
    let mut cnf = pigeonhole(n, n - 1);
    let mut prev = cnf.new_var();
    for _ in 0..pad {
        let v = cnf.new_var();
        cnf.add_clause([prev.neg(), v.pos()]);
        prev = v;
    }
    cnf
}

fn arena_solver(cnf: &Cnf, config: SolverConfig) -> Solver {
    let mut s = Solver::with_config(config);
    for _ in 0..cnf.num_vars() {
        s.new_var();
    }
    for c in cnf.clauses() {
        s.add_clause(c.iter().copied());
    }
    s
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn slug(name: &str) -> String {
    name.to_lowercase().replace(' ', "_")
}

/// One measured feature row: `off_s`/`on_s` are median seconds with the
/// feature disabled/enabled, on `case`.
struct FeatureRow {
    feature: &'static str,
    case: String,
    off_s: f64,
    on_s: f64,
}

impl FeatureRow {
    fn json(&self) -> String {
        format!(
            "    {{\"feature\": \"{}\", \"case\": \"{}\", \"off_s\": {:.6}, \
             \"on_s\": {:.6}, \"speedup\": {:.2}}}",
            self.feature,
            self.case,
            self.off_s,
            self.on_s,
            self.off_s / self.on_s.max(1e-9)
        )
    }
}

/// Median seconds to verify `entry`'s invariant through a fresh-strategy
/// oracle whose solver runs `config`.
fn verify_seconds(
    entry: &ivy_bench::ProtocolEntry,
    strategy: QueryStrategy,
    config: SolverConfig,
    samples: usize,
) -> f64 {
    let sample = measure(samples, || {
        let mut o = Oracle::new();
        o.set_strategy(strategy);
        o.set_budget(ivy_epr::Budget::UNLIMITED);
        o.set_solver_config(config);
        let v = Verifier::with_oracle(&entry.program, Arc::new(o));
        let r = v.check(&entry.invariant).expect("check succeeds");
        assert!(r.is_inductive(), "{}: invariant must verify", entry.name);
    });
    secs(sample.median)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        true
    } else {
        false
    };
    let samples = if smoke { 1 } else { 5 };
    // `cargo bench` runs with the package directory as cwd, so the default
    // output is anchored to the workspace root instead.
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").into());

    let headline = protocols()
        .into_iter()
        .find(|e| e.name == "Learning switch")
        .expect("learning switch is bundled");

    let mut features: Vec<FeatureRow> = Vec::new();

    // Arena vs boxed clauses: identical search policies (the baseline
    // config reproduces the legacy solver's), so the delta is the clause
    // memory layout.
    let hole = pigeonhole(8, 7);
    let padded = padded_pigeonhole(7, 8_000);
    let legacy_s = measure(samples, || {
        for cnf in [&hole, &padded] {
            let mut s = legacy::Solver::new();
            for _ in 0..cnf.num_vars() {
                s.new_var();
            }
            for c in cnf.clauses() {
                s.add_clause(c.iter().copied());
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
        }
    });
    let arena_s = measure(samples, || {
        for cnf in [&hole, &padded] {
            let mut s = arena_solver(cnf, SolverConfig::baseline());
            assert_eq!(s.solve(), SolveResult::Unsat);
        }
    });
    features.push(FeatureRow {
        feature: "arena",
        case: "pigeonhole_8+padded_pigeonhole_7".to_string(),
        off_s: secs(legacy_s.median),
        on_s: secs(arena_s.median),
    });

    // Single-feature toggles on the headline workload: each row enables
    // exactly one feature on top of the all-off baseline.
    let all_off = SolverConfig::baseline();
    let case = format!("{}_verify_fresh", slug(headline.name));
    let off_s = verify_seconds(&headline, QueryStrategy::Fresh, all_off, samples);
    for (feature, config) in [
        ("flat_cnf", {
            let mut c = all_off;
            c.flat_cnf = true;
            c
        }),
        ("lbd_reduction", {
            let mut c = all_off;
            c.lbd_reduction = true;
            c
        }),
        ("minimization", {
            let mut c = all_off;
            c.recursive_minimization = true;
            c
        }),
        ("chrono_backtrack", {
            let mut c = all_off;
            c.chrono_backtrack = true;
            c
        }),
    ] {
        let on_s = verify_seconds(&headline, QueryStrategy::Fresh, config, samples);
        features.push(FeatureRow {
            feature,
            case: case.clone(),
            off_s,
            on_s,
        });
    }
    // Portfolio: the full config raced over 4 diversified threads versus
    // the same config sequential.
    let full = SolverConfig::default();
    let full_s = verify_seconds(&headline, QueryStrategy::Fresh, full, samples);
    let race_s = verify_seconds(&headline, QueryStrategy::Portfolio(4), full, samples);
    features.push(FeatureRow {
        feature: "portfolio",
        case: format!("{}_verify", slug(headline.name)),
        off_s: full_s,
        on_s: race_s,
    });

    for row in &features {
        println!(
            "feature/{}: off {:.4}s on {:.4}s ({:.2}x)",
            row.feature,
            row.off_s,
            row.on_s,
            row.off_s / row.on_s.max(1e-9)
        );
    }

    // All-off vs full across the whole suite: the full config must carry
    // its headline speedup without regressing any other protocol.
    let mut protocol_rows = String::new();
    for entry in protocols() {
        let name = slug(entry.name);
        let all_off_s = verify_seconds(&entry, QueryStrategy::Fresh, all_off, samples);
        let full_s = verify_seconds(&entry, QueryStrategy::Fresh, full, samples);
        let headline_row = entry.name == headline.name;
        println!(
            "protocol/{name}: all_off {all_off_s:.4}s full {full_s:.4}s ({:.2}x)",
            all_off_s / full_s.max(1e-9)
        );
        let _ = writeln!(
            protocol_rows,
            "    {{\"protocol\": \"{name}\", \"headline\": {headline_row}, \
             \"all_off_s\": {all_off_s:.6}, \"full_s\": {full_s:.6}, \"speedup\": {:.2}}},",
            all_off_s / full_s.max(1e-9)
        );
    }

    let feature_rows: Vec<String> = features.iter().map(FeatureRow::json).collect();
    let json = format!(
        "{{\n  \"samples\": {samples},\n  \"features\": [\n{}\n  ],\n  \"protocols\": [\n{}  ]\n}}\n",
        feature_rows.join(",\n"),
        protocol_rows.trim_end_matches(",\n").to_string() + "\n"
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("wrote {out_path}");
}
