//! Ablation: eager versus lazy (CEGAR) equality axiom generation in the
//! EPR decision procedure, on the distributed-lock inductiveness VCs —
//! the query family whose `ep` function updates create large "possibly
//! equal" components.

use ivy_bench::harness::bench_case;
use ivy_epr::{EprCheck, EqualityMode};
use ivy_fol::Formula;
use ivy_protocols::distributed_lock;
use ivy_rml::{rename_symbols, unroll_free};

fn consecution_query(mode: EqualityMode) -> bool {
    let p = distributed_lock::program();
    let inv = Formula::and(distributed_lock::invariant().into_iter().map(|c| c.formula));
    let u = unroll_free(&p, 1);
    let mut q = EprCheck::new(&u.sig).unwrap();
    q.set_equality_mode(mode);
    q.assert_id("base", u.base).unwrap();
    q.assert_labeled("inv", &rename_symbols(&inv, &u.maps[0]))
        .unwrap();
    q.assert_id("step", u.steps[0]).unwrap();
    q.assert_labeled("neg", &Formula::not(rename_symbols(&inv, &u.maps[1])))
        .unwrap();
    !q.check().unwrap().is_sat()
}

fn main() {
    bench_case("equality_eager_vs_lazy", "lazy", 10, || {
        assert!(consecution_query(EqualityMode::Lazy))
    });
    bench_case("equality_eager_vs_lazy", "eager", 10, || {
        assert!(consecution_query(EqualityMode::Eager))
    });
}
