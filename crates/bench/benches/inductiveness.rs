//! Per-protocol inductiveness-check latency: the fully automated step the
//! paper contrasts with manual Coq/Dafny proofs (Section 5.2). Also
//! measures minimal-CTI search versus plain CTI search (Algorithm 1's
//! overhead).

use ivy_bench::{harness::bench_case, protocols};
use ivy_core::{Conjecture, Verifier};
use ivy_fol::parse_formula;
use ivy_protocols::leader;

fn main() {
    for entry in protocols() {
        bench_case("invariant_check", entry.name, 10, || {
            let v = Verifier::new(&entry.program);
            assert!(v.check(&entry.invariant).unwrap().is_inductive());
        });
    }

    let program = leader::program();
    let inv = vec![Conjecture::new("C0", parse_formula(leader::C0).unwrap())];
    bench_case("cti_search", "plain", 10, || {
        let v = Verifier::new(&program);
        assert!(!v.check(&inv).unwrap().is_inductive());
    });
    bench_case("cti_search", "minimized", 10, || {
        let v = Verifier::new(&program);
        assert!(v
            .find_minimal_cti(&inv, &leader::measures())
            .unwrap()
            .is_some());
    });
}
