//! Per-protocol inductiveness-check latency: the fully automated step the
//! paper contrasts with manual Coq/Dafny proofs (Section 5.2). Also
//! measures minimal-CTI search versus plain CTI search (Algorithm 1's
//! overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_bench::protocols;
use ivy_core::{Conjecture, Verifier};
use ivy_fol::parse_formula;
use ivy_protocols::leader;

fn inductiveness(c: &mut Criterion) {
    let mut group = c.benchmark_group("invariant_check");
    group.sample_size(10);
    for entry in protocols() {
        group.bench_function(entry.name, |b| {
            b.iter(|| {
                let v = Verifier::new(&entry.program);
                assert!(v.check(&entry.invariant).unwrap().is_inductive());
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cti_search");
    group.sample_size(10);
    let program = leader::program();
    let inv = vec![Conjecture::new("C0", parse_formula(leader::C0).unwrap())];
    group.bench_function("plain", |b| {
        b.iter(|| {
            let v = Verifier::new(&program);
            assert!(!v.check(&inv).unwrap().is_inductive());
        })
    });
    group.bench_function("minimized", |b| {
        b.iter(|| {
            let v = Verifier::new(&program);
            assert!(v
                .find_minimal_cti(&inv, &leader::measures())
                .unwrap()
                .is_some());
        })
    });
    group.finish();
}

criterion_group!(benches, inductiveness);
criterion_main!(benches);
