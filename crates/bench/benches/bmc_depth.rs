//! The Section 2.2 claim: bounded verification of protocols is practical
//! for around 10 transitions. Measures BMC wall-clock versus depth on the
//! leader-election model (safe, so every query is UNSAT — the hard case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ivy_core::Bmc;
use ivy_protocols::leader;

fn bmc_depth(c: &mut Criterion) {
    let program = leader::program();
    let mut group = c.benchmark_group("bmc_leader_depth");
    group.sample_size(10);
    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut bmc = Bmc::new(&program);
                bmc.set_instance_limit(50_000_000);
                assert!(bmc.check_safety(k).unwrap().is_none());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bmc_depth);
criterion_main!(benches);
