//! The Section 2.2 claim: bounded verification of protocols is practical
//! for around 10 transitions. Measures BMC wall-clock versus depth on the
//! leader-election model (safe, so every query is UNSAT — the hard case).

use ivy_bench::harness::bench_case;
use ivy_core::Bmc;
use ivy_protocols::leader;

fn main() {
    let program = leader::program();
    for k in [1usize, 2, 3, 4] {
        bench_case("bmc_leader_depth", &k.to_string(), 10, || {
            let mut bmc = Bmc::new(&program);
            bmc.set_instance_limit(50_000_000);
            assert!(bmc.check_safety(k).unwrap().is_none());
        });
    }
}
