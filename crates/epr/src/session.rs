//! Incremental EPR sessions: many related queries on one solver.
//!
//! The verification loops built on this crate (inductiveness checking,
//! Houdini, BMC, CTI minimization) discharge *families* of queries that
//! share almost everything: the axioms, the initial/transition frame, and
//! the invariant-conjunct hypotheses are identical from one query to the
//! next; only a small per-conjecture violation changes. [`EprCheck`]
//! re-grounds and re-encodes that shared frame for every query.
//! [`EprSession`] grounds it once: each assertion set becomes a *group* of
//! clauses guarded by an activation literal, queries select groups via
//! solver assumptions, and the CDCL solver's learnt clauses — plus every
//! lazily repaired equality axiom — carry over between queries.
//!
//! Later groups may introduce new Skolem constants, growing the ground-term
//! universe. The session then re-instantiates every live group's universal
//! jobs over exactly the *delta* (tuples mentioning at least one new term),
//! so persistent universals stay sound over the grown universe without
//! repeating old instantiations. To keep the universe from growing linearly
//! with the number of queries — which would make the per-query
//! delta-instantiation cost quadratic over a long session — Skolem
//! constants of retired groups are pooled by sort and reused by later
//! groups: a retired group's clauses are deactivated at level 0, so its
//! Skolem constants are unconstrained and free to take on new meanings.
//!
//! Sessions always use the lazy (CEGAR) equality discipline; repaired
//! axioms are theory-valid level-0 clauses, so they remain sound for every
//! future query regardless of which groups it enables.
//!
//! [`EprCheck`]: crate::EprCheck

use std::collections::BTreeMap;

use ivy_fol::intern::{FormulaId, Interner};
use ivy_fol::xform::Block;
use ivy_fol::{Binding, Formula, Signature, Sort, Sym};
use ivy_sat::{Lit, SolverConfig};
use ivy_telemetry::{Budget, QueryReport, Span, StopReason};

use crate::check::{
    extract_structure, instantiate_delta, split_for_grounding, EprError, EprOutcome, GroundJob,
    GroundStats, InstantiationMode, Model, DEFAULT_INSTANCE_LIMIT,
};
use crate::encode::{Encoder, LazyResult, Template};
use crate::ground::{ensure_inhabited, TermTable};

/// Content fingerprint of a query *frame*: a signature plus an ordered list
/// of labeled, interned assertions. Two frames with the same fingerprint
/// ground to the same universe and the same clause groups, so a session
/// built for one can be reused for the other verbatim. This is the cache
/// key of the solver-oracle layer in `ivy-core`; it is only meaningful
/// within one process (interned ids and hashes are process-local).
pub fn frame_fingerprint(sig: &Signature, asserts: &[(String, FormulaId)]) -> u64 {
    frame_fingerprint_with_mode(sig, asserts, InstantiationMode::Full)
}

/// [`frame_fingerprint`] keyed additionally by the [`InstantiationMode`]:
/// a bounded session grounds a different (smaller) universe and clause set
/// than a full one, and two bounded sessions at different depths differ
/// too, so pooled sessions must never be shared across modes.
pub fn frame_fingerprint_with_mode(
    sig: &Signature,
    asserts: &[(String, FormulaId)],
    mode: InstantiationMode,
) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    mode.hash(&mut h);
    for s in sig.sorts() {
        s.hash(&mut h);
    }
    for (r, args) in sig.relations() {
        r.hash(&mut h);
        args.hash(&mut h);
    }
    for (f, decl) in sig.functions() {
        f.hash(&mut h);
        decl.args.hash(&mut h);
        decl.ret.hash(&mut h);
    }
    for (label, id) in asserts {
        label.hash(&mut h);
        id.hash(&mut h);
    }
    h.finish()
}

/// Handle to one assertion group of an [`EprSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupId(usize);

struct Group {
    label: String,
    act: Lit,
    /// Miniscoped universal jobs, kept for delta re-instantiation when the
    /// universe grows.
    jobs: Vec<GroundJob>,
    /// Skolem constants this group owns; returned to the session's pool for
    /// reuse when the group is retired.
    skolems: Vec<(Sym, Sort)>,
    enabled: bool,
    retired: bool,
}

/// An incremental EPR query session (see the module docs).
///
/// # Examples
///
/// ```
/// use ivy_fol::{parse_formula, Signature};
/// use ivy_epr::EprSession;
///
/// let mut sig = Signature::new();
/// sig.add_sort("s")?;
/// sig.add_relation("r", ["s"])?;
/// sig.add_constant("a", "s")?;
/// let mut s = EprSession::new(&sig)?;
/// // Persistent frame: r holds everywhere.
/// s.assert_labeled("frame", &parse_formula("forall X:s. r(X)")?)?;
/// assert!(s.check()?.is_sat());
/// // A per-query violation, retired after its query.
/// let v = s.assert_labeled("violation", &parse_formula("exists X:s. ~r(X)")?)?;
/// assert!(!s.check()?.is_sat());
/// s.retire(v);
/// assert!(s.check()?.is_sat());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EprSession {
    work_sig: Signature,
    mode: InstantiationMode,
    enc: Encoder,
    guard_counter: usize,
    groups: Vec<Group>,
    instance_limit: u64,
    lazy_round_limit: Option<usize>,
    /// Instantiations performed over the session's lifetime (the budget is
    /// cumulative: shared-frame instantiations are paid once, not per query).
    instances: u64,
    /// Skolem constants freed by retired groups, by sort. Reusing them keeps
    /// the universe — and with it the delta-instantiation cost of persistent
    /// groups — bounded by the largest single query instead of growing with
    /// every query.
    skolem_pool: BTreeMap<Sort, Vec<Sym>>,
    budget: Budget,
    stats: GroundStats,
    report: QueryReport,
    /// Fingerprint of the frame this session was grounded for, when the
    /// session is managed by a frame cache (see [`frame_fingerprint`]).
    frame_key: Option<u64>,
}

impl EprSession {
    /// Opens a session over `sig` in [`InstantiationMode::Full`].
    ///
    /// # Errors
    ///
    /// Returns [`EprError::Sig`] if the signature's functions are not
    /// stratified. [`EprSession::with_mode`] with
    /// [`InstantiationMode::Bounded`] admits such signatures.
    pub fn new(sig: &Signature) -> Result<EprSession, EprError> {
        EprSession::with_mode(sig, InstantiationMode::Full)
    }

    /// Opens a session over `sig` with an explicit [`InstantiationMode`].
    ///
    /// # Errors
    ///
    /// In [`InstantiationMode::Full`], returns [`EprError::Sig`] for
    /// unstratified signatures; [`InstantiationMode::Bounded`] accepts any
    /// signature and any `∀∃` alternation in later groups, at the price of
    /// SAT answers degrading to [`EprOutcome::Unknown`] whenever the bound
    /// actually cut something.
    pub fn with_mode(sig: &Signature, mode: InstantiationMode) -> Result<EprSession, EprError> {
        if !mode.is_bounded() {
            sig.stratification()?;
        }
        let mut work_sig = sig.clone();
        // Inhabit every sort up front; later Skolem constants only grow
        // domains, which preserves EPR satisfiability.
        ensure_inhabited(&mut work_sig);
        let table = match mode {
            InstantiationMode::Full => TermTable::build(&work_sig),
            InstantiationMode::Bounded(depth) => TermTable::build_bounded(&work_sig, depth),
        };
        let mut enc = Encoder::new(table);
        enc.set_bound(mode.depth());
        Ok(EprSession {
            work_sig,
            mode,
            enc,
            guard_counter: 0,
            groups: Vec::new(),
            instance_limit: DEFAULT_INSTANCE_LIMIT,
            lazy_round_limit: None,
            instances: 0,
            skolem_pool: BTreeMap::new(),
            budget: Budget::UNLIMITED,
            stats: GroundStats::default(),
            report: QueryReport::default(),
            frame_key: None,
        })
    }

    /// Tags the session with the [`frame_fingerprint`] of the frame it was
    /// grounded for, so a cache can re-key it on checkout/checkin.
    pub fn set_frame_key(&mut self, key: u64) {
        self.frame_key = Some(key);
    }

    /// The frame fingerprint set by [`EprSession::set_frame_key`], if any.
    pub fn frame_key(&self) -> Option<u64> {
        self.frame_key
    }

    /// The instantiation mode this session runs under.
    pub fn mode(&self) -> InstantiationMode {
        self.mode
    }

    /// Applies a resource [`Budget`]. A deadline or conflict cap that trips
    /// mid-query makes [`EprSession::check`] return
    /// [`EprOutcome::Unknown`] with partial statistics (the session stays
    /// usable); `max_instances` tightens the cumulative instantiation limit.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Caps the *cumulative* number of universal instantiations the session
    /// may perform across all groups.
    pub fn set_instance_limit(&mut self, limit: u64) {
        self.instance_limit = limit;
    }

    /// Bounds the lazy equality repair loop per [`EprSession::check`] call;
    /// exceeding it yields [`EprError::RepairLimit`]. The session stays
    /// usable afterwards (partial repairs are sound). `None` (the default)
    /// never gives up.
    pub fn set_lazy_round_limit(&mut self, limit: Option<usize>) {
        self.lazy_round_limit = limit;
    }

    /// Sets the SAT solver configuration (feature toggles, portfolio
    /// fan-out) for all subsequent [`EprSession::check`] calls. Applies to
    /// the session's long-lived incremental solver immediately.
    pub fn set_solver_config(&mut self, config: SolverConfig) {
        self.enc.solver_mut().set_config(config);
    }

    /// The working signature: the original symbols plus split guards and
    /// Skolem constants accumulated so far.
    pub fn work_sig(&self) -> &Signature {
        &self.work_sig
    }

    /// Grounding and solving statistics as of the last `check` call.
    pub fn stats(&self) -> GroundStats {
        self.stats
    }

    /// Telemetry report of the last `check` call: the same counters as
    /// [`EprSession::stats`], but as per-query deltas (solver statistics
    /// are cumulative across a session) in the machine-readable form
    /// emitted by `--profile`.
    pub fn report(&self) -> &QueryReport {
        &self.report
    }

    /// Asserts one labeled sentence as its own group. See
    /// [`EprSession::assert_group`].
    ///
    /// # Errors
    ///
    /// As for [`EprSession::assert_group`].
    pub fn assert_labeled(
        &mut self,
        label: impl Into<String>,
        f: &Formula,
    ) -> Result<GroupId, EprError> {
        self.assert_group(label, std::slice::from_ref(f))
    }

    /// Asserts one already-interned sentence as its own group. See
    /// [`EprSession::assert_group_ids`].
    ///
    /// # Errors
    ///
    /// As for [`EprSession::assert_group`].
    pub fn assert_id(
        &mut self,
        label: impl Into<String>,
        f: FormulaId,
    ) -> Result<GroupId, EprError> {
        self.assert_group_ids(label, &[f])
    }

    /// Grounds and encodes the conjunction of `formulas` as a new group,
    /// enabled by default. The group's clauses constrain a query only while
    /// the group is enabled; disable it with [`EprSession::set_enabled`] or
    /// drop it permanently with [`EprSession::retire`].
    ///
    /// If the formulas introduce Skolem constants, the universe grows and
    /// every live group's universal jobs are re-instantiated over the new
    /// tuples, so persistent groups remain sound.
    ///
    /// # Errors
    ///
    /// [`EprError::Sort`] for ill-sorted formulas, [`EprError::Skolem`] when
    /// a formula leaves `∃*∀*`, and [`EprError::TooManyInstances`] when the
    /// cumulative instantiation budget would be exceeded. A rejected group
    /// leaves the session fully unchanged: no signature growth, no universe
    /// extension, no partial encoding, and no budget consumed — asserting
    /// the same or a different group afterwards behaves exactly as if the
    /// rejected attempt never happened.
    pub fn assert_group(
        &mut self,
        label: impl Into<String>,
        formulas: &[Formula],
    ) -> Result<GroupId, EprError> {
        for f in formulas {
            f.well_sorted(&self.work_sig, &BTreeMap::new())?;
        }
        let ids: Vec<FormulaId> =
            Interner::with(|it| formulas.iter().map(|f| it.intern(f)).collect());
        self.group_inner(label.into(), &ids)
    }

    /// Like [`EprSession::assert_group`], but over already-interned
    /// sentences — the common case for callers that build queries in id
    /// space (verification conditions, Houdini, BMC). Only the sort check
    /// materializes a tree.
    ///
    /// # Errors
    ///
    /// As for [`EprSession::assert_group`].
    pub fn assert_group_ids(
        &mut self,
        label: impl Into<String>,
        ids: &[FormulaId],
    ) -> Result<GroupId, EprError> {
        Interner::with(|it| -> Result<(), EprError> {
            for &f in ids {
                it.resolve(f)
                    .well_sorted(&self.work_sig, &BTreeMap::new())?;
            }
            Ok(())
        })?;
        self.group_inner(label.into(), ids)
    }

    fn group_inner(&mut self, label: String, ids: &[FormulaId]) -> Result<GroupId, EprError> {
        let ground_span = Span::enter("ground");
        // Split and Skolemize against *staged* copies of the session state
        // (signature, guard counter, universe). Nothing session-visible
        // mutates until the cumulative instantiation budget has admitted
        // the group, so a rejected group leaves the session untouched —
        // no partial encoding, no leaked Skolem constants, no budget
        // consumed. Each Skolem constant is first offered a pooled name
        // freed by a retired group; only genuinely new constants grow the
        // staged signature.
        let mut staged_sig = self.work_sig.clone();
        let mut staged_counter = self.guard_counter;
        let mut jobs: Vec<GroundJob> = Vec::new();
        let mut reused: Vec<(Sym, Sort)> = Vec::new();
        let mut fresh: Vec<(Sym, Sort)> = Vec::new();
        let staged = Interner::with(|it| -> Result<(), EprError> {
            for &f in ids {
                let f = it.eliminate_ite(f);
                let n = it.nnf(f);
                let mut pieces = Vec::new();
                split_for_grounding(
                    it,
                    n,
                    Vec::new(),
                    &mut staged_sig,
                    &mut staged_counter,
                    &mut pieces,
                );
                for piece in pieces {
                    let mut scratch = staged_sig.clone();
                    let sk = match self.mode {
                        InstantiationMode::Full => it.skolemize(piece, &mut scratch)?,
                        InstantiationMode::Bounded(_) => {
                            it.skolemize_bounded(piece, &mut scratch)?
                        }
                    };
                    let mut matrix = sk.universal.matrix;
                    // Skolem *functions* (∀∃ nesting, bounded mode only) are
                    // never pooled: unlike a retired constant, a function's
                    // interpretation is constrained per argument tuple, and
                    // reusing its name under a different matrix would alias
                    // unrelated witnesses. They simply join the signature.
                    for (name, args, ret) in &sk.functions {
                        staged_sig
                            .add_function(*name, args.clone(), *ret)
                            .expect("skolemize_bounded picked a fresh name");
                    }
                    for (name, sort) in sk.constants {
                        match self.skolem_pool.get_mut(&sort).and_then(Vec::pop) {
                            Some(pooled) => {
                                let c = it.cst(pooled);
                                matrix = it.subst_constant(matrix, name, c);
                                reused.push((pooled, sort));
                            }
                            None => {
                                staged_sig
                                    .add_constant(name, sort)
                                    .expect("skolemize picked a fresh name");
                                fresh.push((name, sort));
                            }
                        }
                    }
                    let bindings: Vec<Binding> = sk
                        .universal
                        .prefix
                        .iter()
                        .flat_map(|b| match b {
                            Block::Forall(bs) => bs.clone(),
                            Block::Exists(_) => unreachable!("skolemize leaves only universals"),
                        })
                        .collect();
                    for conjunct in it.conjuncts(matrix) {
                        let fv = it.free_vars(conjunct);
                        let needed: Vec<Binding> = bindings
                            .iter()
                            .filter(|b| fv.contains(&b.var))
                            .cloned()
                            .collect();
                        let template = Template::compile(it, conjunct, &needed);
                        jobs.push(GroundJob {
                            bindings: needed,
                            template,
                        });
                    }
                }
            }
            Ok(())
        });
        if let Err(e) = staged {
            // Abandon the group before anything touched session state;
            // pooled constants that were tentatively claimed go back.
            for (sym, sort) in reused {
                self.skolem_pool.entry(sort).or_default().push(sym);
            }
            return Err(e);
        }
        // Estimate the cumulative instantiation budget against a *preview*
        // of the extended universe — the encoder's own table is untouched
        // until the group is admitted: the new group in full, plus every
        // live group's delta.
        let mut preview = self.enc.table().clone();
        let watermark = match self.mode {
            InstantiationMode::Full => preview.extend(&staged_sig),
            InstantiationMode::Bounded(depth) => preview.extend_bounded(&staged_sig, depth),
        };
        let mut estimated = self.instances;
        for job in &jobs {
            estimated = estimated.saturating_add(count_tuples(&preview, job, 0));
        }
        for g in self.groups.iter().filter(|g| !g.retired) {
            for job in &g.jobs {
                estimated = estimated.saturating_add(count_tuples(&preview, job, watermark));
            }
        }
        let limit = self
            .instance_limit
            .min(self.budget.max_instances.unwrap_or(u64::MAX));
        if estimated > limit {
            // The group is abandoned; the session is exactly as it was.
            for (sym, sort) in reused {
                self.skolem_pool.entry(sort).or_default().push(sym);
            }
            return Err(EprError::TooManyInstances { estimated, limit });
        }
        // Admitted: commit the staged signature and universe, then encode.
        self.work_sig = staged_sig;
        self.guard_counter = staged_counter;
        let committed = self.enc.extend_universe(&self.work_sig);
        debug_assert_eq!(committed, watermark);
        drop(ground_span);
        let _encode_span = Span::enter("encode");
        // Re-instantiate live groups over tuples touching the delta.
        for g in self.groups.iter().filter(|g| !g.retired) {
            for job in &g.jobs {
                instantiate_delta(&mut self.enc, g.act, job, watermark);
            }
        }
        // Instantiate the new group over the whole universe.
        let act = self.enc.fresh_var().pos();
        for job in &jobs {
            instantiate_delta(&mut self.enc, act, job, 0);
        }
        self.instances = estimated;
        reused.append(&mut fresh);
        self.groups.push(Group {
            label,
            act,
            jobs,
            skolems: reused,
            enabled: true,
            retired: false,
        });
        Ok(GroupId(self.groups.len() - 1))
    }

    /// Enables or disables a group for subsequent checks. Disabling merely
    /// stops assuming the group's activation literal; the clauses stay in
    /// the solver and the group can be re-enabled later. No-op on retired
    /// groups.
    pub fn set_enabled(&mut self, id: GroupId, on: bool) {
        let g = &mut self.groups[id.0];
        if !g.retired {
            g.enabled = on;
        }
    }

    /// Permanently drops a group: its activation literal is asserted false
    /// at level 0, letting the solver simplify the group's clauses away, and
    /// the group stops participating in delta re-instantiation. Its Skolem
    /// constants return to the pool for reuse by later groups — the retired
    /// clauses no longer constrain them, so they are free to mean anything.
    pub fn retire(&mut self, id: GroupId) {
        let g = &mut self.groups[id.0];
        if !g.retired {
            g.retired = true;
            g.enabled = false;
            g.jobs.clear();
            for (sym, sort) in g.skolems.drain(..) {
                self.skolem_pool.entry(sort).or_default().push(sym);
            }
            self.enc.solver_mut().retire_group(g.act);
        }
    }

    /// Decides satisfiability of the conjunction of all *enabled* groups,
    /// using the lazy equality discipline. Learnt clauses and equality
    /// repairs persist into subsequent checks.
    ///
    /// With a [`Budget`] applied (see [`EprSession::set_budget`]), a
    /// deadline or conflict cap that trips mid-solve yields
    /// [`EprOutcome::Unknown`] with partial statistics; the session stays
    /// usable.
    ///
    /// # Errors
    ///
    /// [`EprError::RepairLimit`] when a configured round limit is exceeded
    /// (the session stays usable).
    pub fn check(&mut self) -> Result<EprOutcome, EprError> {
        let started = std::time::Instant::now();
        let prev = self.stats;
        // An already-expired deadline degrades up front (zero-delta
        // report); the session state is untouched and stays usable.
        if self.budget.expired() {
            let stop = Some(StopReason::DeadlineExceeded);
            self.report =
                self.stats
                    .report_delta(&prev, "unknown", stop, started.elapsed().as_nanos());
            return Ok(EprOutcome::Unknown(StopReason::DeadlineExceeded));
        }
        let guards: Vec<(Lit, &str)> = self
            .groups
            .iter()
            .filter(|g| g.enabled && !g.retired)
            .map(|g| (g.act, g.label.as_str()))
            .collect();
        let assumptions: Vec<Lit> = guards.iter().map(|(a, _)| *a).collect();
        self.enc.solver_mut().set_deadline(self.budget.deadline);
        let sat_span = Span::enter("sat");
        let (result, rounds) = self.enc.solve_lazy_with(
            &assumptions,
            self.lazy_round_limit,
            self.budget.max_conflicts,
        );
        drop(sat_span);
        // Both verdicts and degradations flow through the same stats
        // builder as EprCheck (satellite: one QueryReport builder).
        let instances = self.instances;
        let finish = |enc: &Encoder, outcome: &str, stop: Option<StopReason>| {
            let stats = GroundStats::collect(enc, instances, 0, rounds);
            let report = stats.report_delta(&prev, outcome, stop, started.elapsed().as_nanos());
            (stats, report)
        };
        let outcome = match result {
            LazyResult::GaveUp => {
                let (stats, report) = finish(&self.enc, "gave_up", Some(StopReason::RepairLimit));
                self.stats = stats;
                self.report = report;
                return Err(EprError::RepairLimit { rounds });
            }
            LazyResult::Deadline => EprOutcome::Unknown(StopReason::DeadlineExceeded),
            LazyResult::Conflicts => EprOutcome::Unknown(StopReason::ConflictBudget),
            // A bounded SAT only stands when the bound never cut anything
            // over the whole session (truncation is sticky and skips are
            // cumulative): the assignment satisfies a subset of the full
            // ground problem, and `extract_structure`'s closed-universe
            // invariant would not hold either.
            LazyResult::Sat if self.enc.table().truncated() || self.enc.skipped_instances() > 0 => {
                EprOutcome::Unknown(StopReason::BoundReached)
            }
            LazyResult::Sat => {
                let structure = extract_structure(&self.enc, &self.work_sig);
                EprOutcome::Sat(Box::new(Model { structure }))
            }
            LazyResult::Unsat => {
                let core: Vec<String> = self
                    .enc
                    .solver()
                    .unsat_core()
                    .iter()
                    .filter_map(|l| {
                        guards
                            .iter()
                            .find(|(a, _)| a == l)
                            .map(|(_, label)| label.to_string())
                    })
                    .collect();
                EprOutcome::Unsat(core)
            }
        };
        let stop = match &outcome {
            EprOutcome::Unknown(r) => Some(*r),
            _ => None,
        };
        let (stats, report) = finish(&self.enc, outcome.tag(), stop);
        self.stats = stats;
        self.report = report;
        Ok(outcome)
    }
}

/// Number of instantiation tuples for `job` over `table`, counting only
/// tuples that mention at least one term id `>= min_term` (with
/// `min_term = 0`: all tuples; empty-binding jobs count as 1 there and 0
/// in any proper delta, matching [`instantiate_delta`]).
fn count_tuples(table: &TermTable, job: &GroundJob, min_term: usize) -> u64 {
    let mut total: u64 = 1;
    let mut old: u64 = 1;
    for b in &job.bindings {
        let terms = table.of_sort(&b.sort);
        total = total.saturating_mul(terms.len() as u64);
        old = old.saturating_mul(terms.iter().filter(|&&t| t < min_term).count() as u64);
    }
    if min_term == 0 {
        total
    } else {
        total - old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EprCheck, EprOutcome};
    use ivy_fol::parse_formula;

    fn sig_rs() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_constant("b", "s").unwrap();
        sig
    }

    #[test]
    fn session_matches_fresh_check_on_basic_queries() {
        let sig = sig_rs();
        let frame = parse_formula("forall X:s. r(X) | X = a").unwrap();
        let queries = [
            "exists X:s. ~r(X) & X ~= a", // unsat under the frame
            "exists X:s. ~r(X)",          // sat: X = a may be unmarked
            "r(b) & ~r(b)",               // unsat outright
        ];
        let mut session = EprSession::new(&sig).unwrap();
        session.assert_labeled("frame", &frame).unwrap();
        for q in queries {
            let f = parse_formula(q).unwrap();
            let g = session.assert_labeled("violation", &f).unwrap();
            let incremental = session.check().unwrap();
            session.retire(g);

            let mut fresh = EprCheck::new(&sig).unwrap();
            fresh.assert_labeled("frame", &frame).unwrap();
            fresh.assert_labeled("violation", &f).unwrap();
            let reference = fresh.check().unwrap();
            assert_eq!(incremental.is_sat(), reference.is_sat(), "query `{q}`");
            if let EprOutcome::Sat(model) = incremental {
                assert!(model.structure.eval_closed(&frame).unwrap());
                assert!(model.structure.eval_closed(&f).unwrap());
            }
        }
    }

    #[test]
    fn persistent_universals_cover_late_skolem_constants() {
        // The frame's universal must also constrain Skolem constants that
        // only appear in a later group — this exercises universe growth and
        // delta re-instantiation.
        let sig = sig_rs();
        let mut session = EprSession::new(&sig).unwrap();
        session
            .assert_labeled("all_r", &parse_formula("forall X:s. r(X)").unwrap())
            .unwrap();
        assert!(session.check().unwrap().is_sat());
        let g = session
            .assert_labeled("cex", &parse_formula("exists X:s. ~r(X)").unwrap())
            .unwrap();
        match session.check().unwrap() {
            EprOutcome::Unsat(core) => {
                assert!(core.contains(&"all_r".to_string()), "{core:?}");
                assert!(core.contains(&"cex".to_string()), "{core:?}");
            }
            EprOutcome::Sat(_) => {
                panic!("delta re-instantiation missed the new Skolem constant")
            }
            EprOutcome::Unknown(r) => panic!("unexpectedly unknown: {r}"),
        }
        session.retire(g);
        assert!(session.check().unwrap().is_sat());
    }

    #[test]
    fn disabled_groups_do_not_constrain_but_can_return() {
        let sig = sig_rs();
        let mut session = EprSession::new(&sig).unwrap();
        let hyp = session
            .assert_labeled("hyp", &parse_formula("forall X:s. r(X)").unwrap())
            .unwrap();
        session
            .assert_labeled("cex", &parse_formula("~r(a)").unwrap())
            .unwrap();
        assert!(!session.check().unwrap().is_sat());
        session.set_enabled(hyp, false);
        assert!(session.check().unwrap().is_sat());
        session.set_enabled(hyp, true);
        assert!(!session.check().unwrap().is_sat());
    }

    #[test]
    fn skolems_from_disabled_groups_still_respect_re_enabled_universals() {
        // A Skolem constant introduced while a universal was disabled must
        // be covered once the universal is re-enabled (instantiation happens
        // at assert time regardless of enablement).
        let sig = sig_rs();
        let mut session = EprSession::new(&sig).unwrap();
        let all = session
            .assert_labeled("all_r", &parse_formula("forall X:s. r(X)").unwrap())
            .unwrap();
        session.set_enabled(all, false);
        session
            .assert_labeled("cex", &parse_formula("exists X:s. ~r(X)").unwrap())
            .unwrap();
        assert!(session.check().unwrap().is_sat());
        session.set_enabled(all, true);
        assert!(!session.check().unwrap().is_sat());
    }

    #[test]
    fn equality_repairs_survive_across_queries() {
        // Query 1 forces equality reasoning (transitivity + congruence);
        // query 2 reuses the same frame and must stay correct.
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_constant("b", "s").unwrap();
        sig.add_constant("c", "s").unwrap();
        let mut session = EprSession::new(&sig).unwrap();
        session
            .assert_labeled("chain", &parse_formula("a = b & b = c").unwrap())
            .unwrap();
        let v1 = session
            .assert_labeled("v1", &parse_formula("r(a) & ~r(c)").unwrap())
            .unwrap();
        assert!(!session.check().unwrap().is_sat());
        session.retire(v1);
        let v2 = session
            .assert_labeled("v2", &parse_formula("r(c) & ~r(b)").unwrap())
            .unwrap();
        assert!(!session.check().unwrap().is_sat());
        session.retire(v2);
        let v3 = session
            .assert_labeled("v3", &parse_formula("r(a) & r(b)").unwrap())
            .unwrap();
        assert!(session.check().unwrap().is_sat());
        session.retire(v3);
    }

    #[test]
    fn cumulative_instance_limit_enforced() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("q", ["s", "s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_constant("b", "s").unwrap();
        let mut session = EprSession::new(&sig).unwrap();
        session.set_instance_limit(5);
        // 2 terms, binary universal: 4 instantiations — fits.
        session
            .assert_labeled("q1", &parse_formula("forall X:s, Y:s. q(X, Y)").unwrap())
            .unwrap();
        // A second universal brings the cumulative total to 8 > 5.
        let err = session
            .assert_labeled("q2", &parse_formula("forall X:s, Y:s. q(Y, X)").unwrap())
            .unwrap_err();
        assert!(matches!(err, EprError::TooManyInstances { .. }), "{err}");
        // The session is still usable with the first group.
        assert!(session.check().unwrap().is_sat());
        // The rejected group must have left the session fully unchanged:
        // after raising the limit, re-pushing the same group and an extra
        // contradiction must behave exactly like a session that never saw
        // the rejection at all.
        session.set_instance_limit(u64::MAX);
        session
            .assert_labeled("q2", &parse_formula("forall X:s, Y:s. q(Y, X)").unwrap())
            .unwrap();
        session
            .assert_labeled("q3", &parse_formula("~q(a, b)").unwrap())
            .unwrap();
        let mut fresh = EprSession::new(&sig).unwrap();
        for (label, f) in [
            ("q1", "forall X:s, Y:s. q(X, Y)"),
            ("q2", "forall X:s, Y:s. q(Y, X)"),
            ("q3", "~q(a, b)"),
        ] {
            fresh
                .assert_labeled(label, &parse_formula(f).unwrap())
                .unwrap();
        }
        let (bumped, reference) = (session.check().unwrap(), fresh.check().unwrap());
        assert!(!bumped.is_sat());
        assert_eq!(bumped.is_sat(), reference.is_sat());
        assert_eq!(
            session.stats().instances,
            fresh.stats().instances,
            "rejected group leaked ground instances into the session"
        );
    }

    #[test]
    fn empty_session_is_sat() {
        let mut session = EprSession::new(&sig_rs()).unwrap();
        assert!(session.check().unwrap().is_sat());
    }

    #[test]
    fn bounded_session_admits_unstratified_signature() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        assert!(EprSession::new(&sig).is_err());
        let mut session = EprSession::with_mode(&sig, InstantiationMode::Bounded(2)).unwrap();
        // SAT under a live bound (the `next` closure is infinite, so any
        // bound truncates) degrades to Unknown.
        session
            .assert_labeled("some_r", &parse_formula("r(a)").unwrap())
            .unwrap();
        match session.check().unwrap() {
            EprOutcome::Unknown(StopReason::BoundReached) => {}
            other => panic!("expected BoundReached, got {}", other.tag()),
        }
        // UNSAT is still a verdict on the very same session.
        session
            .assert_labeled("no_r", &parse_formula("~r(a)").unwrap())
            .unwrap();
        match session.check().unwrap() {
            EprOutcome::Unsat(core) => {
                assert!(core.contains(&"some_r".to_string()), "{core:?}");
                assert!(core.contains(&"no_r".to_string()), "{core:?}");
            }
            other => panic!("expected unsat, got {}", other.tag()),
        }
    }

    #[test]
    fn bounded_session_handles_ae_groups() {
        // ∀∃ in a group Skolemizes to a function; the frame's universal
        // must still refute a later contradictory witness.
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("le", ["s", "s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        let mut session = EprSession::with_mode(&sig, InstantiationMode::Bounded(2)).unwrap();
        session
            .assert_labeled(
                "succ",
                &parse_formula("forall X:s. exists Y:s. le(X, Y) & X ~= Y").unwrap(),
            )
            .unwrap();
        let g = session
            .assert_labeled(
                "max",
                &parse_formula("exists X:s. forall Y:s. le(X, Y) -> X = Y").unwrap(),
            )
            .unwrap();
        match session.check().unwrap() {
            EprOutcome::Unsat(core) => {
                assert!(core.contains(&"succ".to_string()), "{core:?}");
                assert!(core.contains(&"max".to_string()), "{core:?}");
            }
            other => panic!("expected unsat, got {}", other.tag()),
        }
        // Retiring the witness leaves a satisfiable-but-truncated frame:
        // Unknown, never a spurious verdict.
        session.retire(g);
        match session.check().unwrap() {
            EprOutcome::Unknown(StopReason::BoundReached) => {}
            other => panic!("expected BoundReached, got {}", other.tag()),
        }
    }

    #[test]
    fn bounded_session_matches_full_when_closure_fits() {
        // A function-free frame: the bounded universe equals the full one,
        // so the bound is never load-bearing and verdicts are identical.
        let sig = sig_rs();
        let frame = parse_formula("forall X:s. r(X) | X = a").unwrap();
        let queries = ["exists X:s. ~r(X) & X ~= a", "exists X:s. ~r(X)"];
        let mut bounded = EprSession::with_mode(&sig, InstantiationMode::Bounded(3)).unwrap();
        let mut full = EprSession::new(&sig).unwrap();
        bounded.assert_labeled("frame", &frame).unwrap();
        full.assert_labeled("frame", &frame).unwrap();
        for q in queries {
            let f = parse_formula(q).unwrap();
            let gb = bounded.assert_labeled("violation", &f).unwrap();
            let gf = full.assert_labeled("violation", &f).unwrap();
            let (b, r) = (bounded.check().unwrap(), full.check().unwrap());
            assert_eq!(b.is_sat(), r.is_sat(), "query `{q}`");
            assert_eq!(b.tag(), r.tag(), "query `{q}`");
            bounded.retire(gb);
            full.retire(gf);
        }
    }

    #[test]
    fn fingerprint_keyed_by_mode() {
        let sig = sig_rs();
        let asserts: Vec<(String, FormulaId)> = vec![(
            "inv".to_string(),
            Interner::with(|it| it.intern(&parse_formula("forall X:s. r(X)").unwrap())),
        )];
        let full = frame_fingerprint(&sig, &asserts);
        let b2 = frame_fingerprint_with_mode(&sig, &asserts, InstantiationMode::Bounded(2));
        let b3 = frame_fingerprint_with_mode(&sig, &asserts, InstantiationMode::Bounded(3));
        assert_ne!(
            full, b2,
            "bounded and full frames must never share sessions"
        );
        assert_ne!(b2, b3, "different depths ground different clause sets");
        assert_eq!(
            full,
            frame_fingerprint_with_mode(&sig, &asserts, InstantiationMode::Full)
        );
    }

    /// A session loaded with a ground pigeonhole instance (`n` pigeons into
    /// `n - 1` holes): hard UNSAT, so budgeted checks reliably run out
    /// before the verdict.
    fn pigeonhole_session(n: usize) -> EprSession {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("in", ["s", "s"]).unwrap();
        for i in 0..n {
            sig.add_constant(format!("p{i}").as_str(), "s").unwrap();
        }
        for j in 0..n - 1 {
            sig.add_constant(format!("h{j}").as_str(), "s").unwrap();
        }
        let mut session = EprSession::new(&sig).unwrap();
        for i in 0..n {
            let row: Vec<String> = (0..n - 1).map(|j| format!("in(p{i}, h{j})")).collect();
            session
                .assert_labeled(format!("row{i}"), &parse_formula(&row.join(" | ")).unwrap())
                .unwrap();
        }
        for a in 0..n {
            for b in (a + 1)..n {
                for j in 0..n - 1 {
                    session
                        .assert_labeled(
                            format!("excl{a}_{b}_{j}"),
                            &parse_formula(&format!("~in(p{a}, h{j}) | ~in(p{b}, h{j})")).unwrap(),
                        )
                        .unwrap();
                }
            }
        }
        session
    }

    #[test]
    fn expired_deadline_degrades_to_unknown() {
        let mut session = pigeonhole_session(8);
        session.set_budget(Budget::with_timeout(std::time::Duration::ZERO));
        match session.check().unwrap() {
            EprOutcome::Unknown(StopReason::DeadlineExceeded) => {}
            other => panic!("expected deadline Unknown, got {}", other.tag()),
        }
        // Partial statistics were still published.
        assert_eq!(session.report().outcome, "unknown");
        assert_eq!(session.report().stop, Some(StopReason::DeadlineExceeded));
        // Lifting the budget restores the decisive verdict on the same
        // session — degradation must not corrupt incremental state.
        session.set_budget(Budget::UNLIMITED);
        assert!(!session.check().unwrap().is_sat());
    }

    #[test]
    fn conflict_budget_degrades_to_unknown() {
        let mut session = pigeonhole_session(8);
        session.set_budget(Budget::UNLIMITED.with_max_conflicts(1));
        match session.check().unwrap() {
            EprOutcome::Unknown(StopReason::ConflictBudget) => {}
            other => panic!("expected conflict-budget Unknown, got {}", other.tag()),
        }
        session.set_budget(Budget::UNLIMITED);
        assert!(!session.check().unwrap().is_sat());
    }
}
