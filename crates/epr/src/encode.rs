//! Grounding and propositional encoding of EPR formulas.
//!
//! After Skolemization, every assertion is a universally quantified
//! quantifier-free matrix over a finite ground-term universe. The encoder
//! instantiates universals over the universe, Tseitin-encodes the resulting
//! ground formulas, and axiomatizes equality *locally*: equality variables
//! exist only for pairs of terms that can possibly be equal (connected by
//! equality atoms, directly or through congruence), which keeps the
//! transitivity/congruence axioms from exploding over large universes.

use std::collections::{BTreeMap, HashMap};

use ivy_fol::intern::{FormulaId, FormulaNode, Interner, TermNode};
use ivy_fol::{Binding, Formula, Signature, Sym, Term};
use ivy_sat::{Interrupt, Lit, Solver, Var};

use crate::ground::{TermId, TermTable};

/// A hash-consed term id from the formula interner, distinct from the
/// ground-term [`TermId`] of the universe table.
type FolTermId = ivy_fol::intern::TermId;

/// Atoms bucketed by (symbol, componentwise signature) for congruence.
type AtomBuckets = BTreeMap<(Sym, Vec<usize>), Vec<(Vec<TermId>, Var)>>;

/// Disjoint-set forest over term ids.
#[derive(Clone, Debug)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb)] = ra.min(rb);
        true
    }
}

/// How equality axioms are generated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EqualityMode {
    /// Generate all transitivity/congruence axioms over "possibly equal"
    /// components up front. Simple, but cubic in component size.
    Eager,
    /// Solve first, then add only the equality axioms the model violates,
    /// and repeat (a CEGAR loop, as in lazy SMT). Usually far fewer clauses.
    #[default]
    Lazy,
}

/// One ground-term evaluation step of a [`Template`]: either read a
/// quantified variable's ground instantiation from the environment, or look
/// up a function application over previously evaluated steps.
#[derive(Clone, Debug)]
pub(crate) enum TStep {
    /// The value of the `i`-th binding of the job's universal prefix.
    Var(usize),
    /// `sym(steps[j]...)` resolved through the closed universe table.
    App(Sym, Vec<usize>),
}

/// Which way a subformula constrains its Tseitin gate: `Pos` occurrences
/// only need `gate → formula`, `Neg` only `formula → gate`, `Both` (under an
/// `iff`) need the full equivalence. Polarity is static — it depends only on
/// the matrix structure, so the template walk threads it for free and the
/// replay path can emit Plaisted–Greenbaum gates (half the clauses of full
/// Tseitin). The tree encoder ([`Encoder::encode`]) predates polarity
/// tracking and keeps emitting full Tseitin gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Polarity {
    Pos,
    Neg,
    Both,
}

impl Polarity {
    fn flip(self) -> Polarity {
        match self {
            Polarity::Pos => Polarity::Neg,
            Polarity::Neg => Polarity::Pos,
            Polarity::Both => Polarity::Both,
        }
    }
}

/// The propositional skeleton of a quantifier-free matrix, with terms
/// replaced by indices into the shared step list.
#[derive(Clone, Debug)]
pub(crate) enum TNode {
    True,
    False,
    Rel(Sym, Vec<usize>),
    Eq(usize, usize),
    Not(Box<TNode>),
    And(Vec<TNode>),
    Or(Vec<TNode>),
    Implies(Box<TNode>, Box<TNode>),
    Iff(Box<TNode>, Box<TNode>),
}

/// One literal of a pre-flattened clausal matrix (see [`Template::compile`]):
/// an atom over step indices plus a sign.
#[derive(Clone, Debug)]
pub(crate) enum CLit {
    /// `sym(steps…)`, negated when `neg`.
    Rel {
        /// Negate the atom.
        neg: bool,
        /// Relation symbol.
        sym: Sym,
        /// Argument step indices.
        args: Vec<usize>,
    },
    /// `steps[a] = steps[b]`, negated when `neg`.
    Eq {
        /// Negate the equality.
        neg: bool,
        /// Left step index.
        a: usize,
        /// Right step index.
        b: usize,
    },
}

/// A conjunction of disjunctions of [`CLit`]s — a matrix pre-flattened to
/// CNF at template-compile time.
type FlatCnf = Vec<Vec<CLit>>;

/// Clause-count cap for [`flatten_cnf`]: matrices whose distributed CNF
/// exceeds this many clauses fall back to Tseitin gates, so distribution
/// can never blow up (it is quadratic in the cap, run once per template).
const FLAT_CNF_MAX_CLAUSES: usize = 16;
/// Total-literal cap for [`flatten_cnf`] (same fallback).
const FLAT_CNF_MAX_LITS: usize = 96;

/// `∨` of two CNFs by distribution: every clause of `a` joined with every
/// clause of `b`. `None` when the product exceeds the flattening caps.
fn cnf_or(a: FlatCnf, b: FlatCnf) -> Option<FlatCnf> {
    if a.len() * b.len() > FLAT_CNF_MAX_CLAUSES {
        return None;
    }
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ca in &a {
        for cb in &b {
            let mut c = ca.clone();
            c.extend(cb.iter().cloned());
            out.push(c);
        }
    }
    Some(out)
}

/// Flattens `n` (negated when `neg`) into CNF by pushing negations inward
/// and distributing `∨` over `∧`, without auxiliary variables. Returns
/// `None` when the result would exceed [`FLAT_CNF_MAX_CLAUSES`] clauses or
/// [`FLAT_CNF_MAX_LITS`] literals — those matrices (rare, deeply mixed
/// connectives) keep the Tseitin gate encoding instead.
fn flatten_cnf(n: &TNode, neg: bool) -> Option<FlatCnf> {
    let out = match n {
        // ⊤ is the empty conjunction; ⊥ the empty clause.
        TNode::True => {
            if neg {
                vec![Vec::new()]
            } else {
                Vec::new()
            }
        }
        TNode::False => {
            if neg {
                Vec::new()
            } else {
                vec![Vec::new()]
            }
        }
        TNode::Rel(r, args) => vec![vec![CLit::Rel {
            neg,
            sym: *r,
            args: args.clone(),
        }]],
        TNode::Eq(a, b) => vec![vec![CLit::Eq { neg, a: *a, b: *b }]],
        TNode::Not(g) => flatten_cnf(g, !neg)?,
        TNode::And(fs) if !neg => {
            let mut acc = Vec::new();
            for g in fs {
                acc.extend(flatten_cnf(g, false)?);
            }
            acc
        }
        // ¬(∧ fs) = ∨ ¬fs — distribute; dually for a positive ∨.
        TNode::And(fs) => {
            let mut acc = vec![Vec::new()];
            for g in fs {
                acc = cnf_or(acc, flatten_cnf(g, true)?)?;
            }
            acc
        }
        TNode::Or(fs) if !neg => {
            let mut acc = vec![Vec::new()];
            for g in fs {
                acc = cnf_or(acc, flatten_cnf(g, false)?)?;
            }
            acc
        }
        TNode::Or(fs) => {
            let mut acc = Vec::new();
            for g in fs {
                acc.extend(flatten_cnf(g, true)?);
            }
            acc
        }
        TNode::Implies(a, b) if !neg => cnf_or(flatten_cnf(a, true)?, flatten_cnf(b, false)?)?,
        TNode::Implies(a, b) => {
            let mut acc = flatten_cnf(a, false)?;
            acc.extend(flatten_cnf(b, true)?);
            acc
        }
        // a ↔ b = (a → b) ∧ (b → a); ¬(a ↔ b) = (a ∨ b) ∧ (¬a ∨ ¬b).
        TNode::Iff(a, b) if !neg => {
            let mut acc = cnf_or(flatten_cnf(a, true)?, flatten_cnf(b, false)?)?;
            acc.extend(cnf_or(flatten_cnf(b, true)?, flatten_cnf(a, false)?)?);
            acc
        }
        TNode::Iff(a, b) => {
            let mut acc = cnf_or(flatten_cnf(a, false)?, flatten_cnf(b, false)?)?;
            acc.extend(cnf_or(flatten_cnf(a, true)?, flatten_cnf(b, true)?)?);
            acc
        }
    };
    let lits: usize = out.iter().map(Vec::len).sum();
    (out.len() <= FLAT_CNF_MAX_CLAUSES && lits <= FLAT_CNF_MAX_LITS).then_some(out)
}

/// A pre-compiled instantiation plan for one universal grounding job.
///
/// Compiled once per job from the hash-consed matrix: the term structure is
/// flattened into `steps` — deduplicated by interned [`FolTermId`], so a
/// subterm shared five times across the matrix is evaluated once per ground
/// tuple instead of five times — and the boolean skeleton becomes a
/// [`TNode`] tree mirroring the matrix exactly. Replaying a template
/// ([`Encoder::assert_template`]) makes the *same* `rel_var`/`eq_lit`/gate
/// *variable* allocations in the same DFS order as the tree encoder, so
/// atom and gate numbering is unchanged; gate *clauses* are the
/// Plaisted–Greenbaum subset for the gate's static polarity (roots are
/// asserted positively under a guard, so the admissible atom assignments —
/// and hence soundness of models and UNSAT cores — are preserved; only the
/// solver's choice among equivalent models may differ from full Tseitin).
#[derive(Clone, Debug)]
pub(crate) struct Template {
    steps: Vec<TStep>,
    root: TNode,
    /// The matrix flattened into a small CNF over its own atoms, when the
    /// bounded distribution of [`flatten_cnf`] succeeds (it does for nearly
    /// every invariant, axiom, and frame condition). Flat templates are
    /// asserted clause-by-clause with no Tseitin gates at all
    /// ([`Encoder::assert_template`]), so the SAT variable count stays
    /// proportional to the number of distinct ground atoms rather than
    /// ground instantiations.
    cnf: Option<FlatCnf>,
}

impl Template {
    /// Compiles `matrix` against the universal prefix `bindings` (the
    /// environment layout at replay time).
    ///
    /// # Panics
    ///
    /// Panics on variables not bound by `bindings`, on `ite` (eliminate
    /// first), or on quantifiers in the matrix — all pipeline invariants.
    pub(crate) fn compile(it: &Interner, matrix: FormulaId, bindings: &[Binding]) -> Template {
        let var_pos: BTreeMap<Sym, usize> = bindings
            .iter()
            .enumerate()
            .map(|(i, b)| (b.var, i))
            .collect();
        let mut steps = Vec::new();
        let mut seen: HashMap<FolTermId, usize> = HashMap::new();
        let root = compile_node(it, matrix, &var_pos, &mut steps, &mut seen);
        let cnf = flatten_cnf(&root, false);
        Template { steps, root, cnf }
    }
}

fn compile_term(
    it: &Interner,
    t: FolTermId,
    var_pos: &BTreeMap<Sym, usize>,
    steps: &mut Vec<TStep>,
    seen: &mut HashMap<FolTermId, usize>,
) -> usize {
    if let Some(&i) = seen.get(&t) {
        return i;
    }
    let step = match it.term_node(t) {
        TermNode::Var(v) => TStep::Var(
            *var_pos
                .get(v)
                .unwrap_or_else(|| panic!("unbound variable {v} during grounding")),
        ),
        TermNode::App(f, args) => TStep::App(
            *f,
            args.iter()
                .map(|&a| compile_term(it, a, var_pos, steps, seen))
                .collect(),
        ),
        TermNode::Ite(..) => panic!("ite must be eliminated before grounding"),
    };
    steps.push(step);
    seen.insert(t, steps.len() - 1);
    steps.len() - 1
}

fn compile_node(
    it: &Interner,
    f: FormulaId,
    var_pos: &BTreeMap<Sym, usize>,
    steps: &mut Vec<TStep>,
    seen: &mut HashMap<FolTermId, usize>,
) -> TNode {
    match it.node(f) {
        FormulaNode::True => TNode::True,
        FormulaNode::False => TNode::False,
        FormulaNode::Rel(r, args) => TNode::Rel(
            *r,
            args.iter()
                .map(|&a| compile_term(it, a, var_pos, steps, seen))
                .collect(),
        ),
        FormulaNode::Eq(a, b) => {
            let sa = compile_term(it, *a, var_pos, steps, seen);
            let sb = compile_term(it, *b, var_pos, steps, seen);
            TNode::Eq(sa, sb)
        }
        FormulaNode::Not(g) => TNode::Not(Box::new(compile_node(it, *g, var_pos, steps, seen))),
        FormulaNode::And(fs) => TNode::And(
            fs.iter()
                .map(|&g| compile_node(it, g, var_pos, steps, seen))
                .collect(),
        ),
        FormulaNode::Or(fs) => TNode::Or(
            fs.iter()
                .map(|&g| compile_node(it, g, var_pos, steps, seen))
                .collect(),
        ),
        FormulaNode::Implies(a, b) => {
            let na = compile_node(it, *a, var_pos, steps, seen);
            let nb = compile_node(it, *b, var_pos, steps, seen);
            TNode::Implies(Box::new(na), Box::new(nb))
        }
        FormulaNode::Iff(a, b) => {
            let na = compile_node(it, *a, var_pos, steps, seen);
            let nb = compile_node(it, *b, var_pos, steps, seen);
            TNode::Iff(Box::new(na), Box::new(nb))
        }
        FormulaNode::Forall(..) | FormulaNode::Exists(..) => {
            panic!("encode: quantifier in matrix (prenexing bug)")
        }
    }
}

/// Flat open-addressing hash index over ground atoms, the fast-path
/// counterpart of the canonical `rel_atoms`/`eq_vars` `BTreeMap`s.
///
/// Keys are a symbol's dense id plus an argument run stored in one flat
/// arena, probed by borrowed slice — the template-replay hot loop (millions
/// of `cache.atom_hits` per check) performs no allocation and no SipHash.
/// Equality atoms index here too, under the reserved [`EQ_SYM`] id. The
/// `BTreeMap`s remain the canonical stores: every deterministic iteration
/// (equality repair, congruence bucketing, model extraction) still walks
/// them in order.
#[derive(Clone, Debug, Default)]
struct AtomIndex {
    /// Power-of-two slot table holding entry index + 1 (0 = empty slot).
    slots: Vec<u32>,
    /// Per-entry key: (symbol id, arg start, arg len) into `args`.
    keys: Vec<(u32, u32, u32)>,
    /// Per-entry SAT variable.
    vars: Vec<Var>,
    /// Flat argument arena; each key owns one contiguous run.
    args: Vec<TermId>,
}

/// Reserved [`AtomIndex`] symbol id for equality atoms (`a = b` keyed as
/// `EQ_SYM(min, max)`); relation ids are dense and never reach it.
const EQ_SYM: u32 = u32::MAX;

impl AtomIndex {
    /// Multiply-xor key hash (splitmix-style finalizer per word).
    fn hash(sym: u32, args: &[TermId]) -> u64 {
        let mut h = (u64::from(sym) ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0xff51_afd7_ed55_8ccd);
        for &a in args {
            h = (h ^ a as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
        }
        h
    }

    fn entry_matches(&self, e: u32, sym: u32, args: &[TermId]) -> bool {
        let (s, start, len) = self.keys[e as usize - 1];
        s == sym
            && len as usize == args.len()
            && self.args[start as usize..start as usize + len as usize] == *args
    }

    fn get(&self, sym: u32, args: &[TermId]) -> Option<Var> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(sym, args) as usize & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                e => {
                    if self.entry_matches(e, sym, args) {
                        return Some(self.vars[e as usize - 1]);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a key the caller knows is absent.
    fn insert(&mut self, sym: u32, args: &[TermId], v: Var) {
        if (self.keys.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let start = u32::try_from(self.args.len()).expect("atom argument arena overflow");
        self.args.extend_from_slice(args);
        self.keys.push((sym, start, args.len() as u32));
        self.vars.push(v);
        let e = self.keys.len() as u32;
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(sym, args) as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = e;
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(1024);
        self.slots = vec![0; cap];
        let mask = cap - 1;
        for (idx, &(sym, start, len)) in self.keys.iter().enumerate() {
            let args = &self.args[start as usize..(start + len) as usize];
            let mut i = Self::hash(sym, args) as usize & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32 + 1;
        }
    }
}

/// Tseitin encoder over a ground-term universe, with lazy atom allocation
/// and relevant-pairs equality.
///
/// Atom and equality maps are ordered (`BTreeMap`), so every iteration over
/// them — equality repair, congruence bucketing, model extraction — is
/// deterministic across processes. Incremental sessions rely on this:
/// repeated runs must produce the same models and hence the same CTIs.
pub struct Encoder {
    solver: Solver,
    table: TermTable,
    true_lit: Lit,
    rel_atoms: BTreeMap<(Sym, Vec<TermId>), Var>,
    /// Flat hash index over `rel_atoms` and `eq_vars` for the template
    /// replay path (see [`AtomIndex`]).
    atom_index: AtomIndex,
    eq_vars: BTreeMap<(TermId, TermId), Var>,
    /// Pairs that received an equality variable from the matrix (pre-closure).
    seed_pairs: Vec<(TermId, TermId)>,
    finalized: bool,
    /// Clauses added by the lazy repair loop, for dedup.
    lazy_added: std::collections::HashSet<LazyAxiom>,
    /// Reused step-value buffer for template replay (one live replay at a
    /// time; reuse keeps the per-tuple loop allocation-free).
    scratch_vals: Vec<TermId>,
    /// Reused atom-argument buffer for the `TNode::Rel` probe.
    scratch_args: Vec<TermId>,
    /// Reused literal buffer for the clausal template fast path.
    scratch_clause: Vec<Lit>,
    /// Ground-atom (Tseitin) cache hits: `rel_var`/`eq_lit` calls answered
    /// from the atom maps instead of allocating a fresh SAT variable.
    atom_hits: u64,
    /// Ground-atom cache misses (fresh variable allocations).
    atom_misses: u64,
    /// Instantiation depth bound, when the encoder runs in bounded mode.
    /// `None` (full mode) keeps the closed-universe invariant: applications
    /// outside the universe are pipeline bugs and panic. `Some(d)` makes
    /// them expected — the whole ground instance is skipped and counted.
    bound: Option<usize>,
    /// Ground instances skipped because a term fell outside the bounded
    /// universe (bounded mode only). Nonzero means the bound was
    /// load-bearing for instantiation.
    skipped: u64,
}

/// Outcome of [`Encoder::solve_lazy_with`], distinguishing the ways the
/// lazy loop can stop without a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LazyResult {
    /// Satisfiable, equality-consistent model available.
    Sat,
    /// Unsatisfiable (sound regardless of pending equality axioms).
    Unsat,
    /// The repair loop hit its round limit or axiom flood cutoff.
    GaveUp,
    /// The caller's wall-clock deadline passed mid-solve.
    Deadline,
    /// The caller's total conflict budget was exhausted.
    Conflicts,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum LazyAxiom {
    Transitivity(TermId, TermId, TermId),
    FunCongruence(TermId, TermId),
    RelCongruence(Var, Var),
}

impl Encoder {
    /// Creates an encoder over the given universe.
    pub fn new(table: TermTable) -> Encoder {
        let mut solver = Solver::new();
        let t = solver.new_var();
        solver.add_clause([t.pos()]);
        Encoder {
            solver,
            table,
            true_lit: t.pos(),
            rel_atoms: BTreeMap::new(),
            atom_index: AtomIndex::default(),
            eq_vars: BTreeMap::new(),
            seed_pairs: Vec::new(),
            finalized: false,
            lazy_added: std::collections::HashSet::new(),
            scratch_vals: Vec::new(),
            scratch_args: Vec::new(),
            scratch_clause: Vec::new(),
            atom_hits: 0,
            atom_misses: 0,
            bound: None,
            skipped: 0,
        }
    }

    /// Puts the encoder in bounded-instantiation mode with the given term
    /// depth (or back in full mode with `None`). In bounded mode a template
    /// instance whose terms fall outside the (truncated) universe is skipped
    /// atomically — no partial clauses — and counted in
    /// [`Encoder::skipped_instances`]; universe extensions go through
    /// [`TermTable::extend_bounded`].
    pub fn set_bound(&mut self, bound: Option<usize>) {
        self.bound = bound;
    }

    /// The depth bound set by [`Encoder::set_bound`], if any.
    pub fn bound(&self) -> Option<usize> {
        self.bound
    }

    /// Ground instances skipped because the depth bound truncated the
    /// universe (cumulative; always 0 in full mode).
    pub fn skipped_instances(&self) -> u64 {
        self.skipped
    }

    /// `(hits, misses)` of the ground-atom/equality-variable caches,
    /// cumulative over the encoder's lifetime.
    pub fn atom_cache_stats(&self) -> (u64, u64) {
        (self.atom_hits, self.atom_misses)
    }

    /// The universe.
    pub fn table(&self) -> &TermTable {
        &self.table
    }

    /// Grows the universe in place to cover new constants in `sig` and the
    /// function closure over them (see [`TermTable::extend`]); returns the
    /// term count before the extension. Existing term ids, atoms, equality
    /// variables and clauses are unaffected — incremental sessions use the
    /// returned watermark to instantiate persistent universals over the
    /// delta only. In bounded mode the closure is cut at the depth bound
    /// (see [`TermTable::extend_bounded`]).
    pub fn extend_universe(&mut self, sig: &Signature) -> usize {
        match self.bound {
            Some(d) => self.table.extend_bounded(sig, d),
            None => self.table.extend(sig),
        }
    }

    /// A literal that is always true.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// Allocates a fresh free variable (used for assumption guards).
    pub fn fresh_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Adds a clause directly.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.solver.add_clause(lits);
    }

    /// The propositional variable of the ground atom `sym(args)`.
    pub fn rel_var(&mut self, sym: &Sym, args: &[TermId]) -> Var {
        if let Some(v) = self.atom_index.get(sym.id(), args) {
            self.atom_hits += 1;
            return v;
        }
        self.atom_misses += 1;
        let v = self.solver.new_var();
        self.rel_atoms.insert((*sym, args.to_vec()), v);
        self.atom_index.insert(sym.id(), args, v);
        v
    }

    /// The literal of the ground equality `a = b`.
    pub fn eq_lit(&mut self, a: TermId, b: TermId) -> Lit {
        if a == b {
            return self.true_lit;
        }
        debug_assert_eq!(
            self.table.sort(a),
            self.table.sort(b),
            "cross-sort equality is ill-sorted"
        );
        let key = (a.min(b), a.max(b));
        if let Some(v) = self.atom_index.get(EQ_SYM, &[key.0, key.1]) {
            self.atom_hits += 1;
            return v.pos();
        }
        self.atom_misses += 1;
        let v = self.solver.new_var();
        // Unconstrained equalities must default to *false*: phase saving
        // would otherwise let a stale `true` from an earlier model inflate
        // the union-find classes of the lazy repair scan, which then
        // axiomatizes enormous congruence buckets.
        self.solver.pin_phase(v, false);
        self.eq_vars.insert(key, v);
        self.atom_index.insert(EQ_SYM, &[key.0, key.1], v);
        if !self.finalized {
            self.seed_pairs.push(key);
        }
        v.pos()
    }

    /// Evaluates a ground (variable-free after `env`) term to its id.
    ///
    /// # Panics
    ///
    /// Panics on unbound variables, `ite` (eliminate first), or applications
    /// outside the closed universe — all internal invariants.
    pub fn term_id(&self, t: &Term, env: &[(Sym, TermId)]) -> TermId {
        match t {
            Term::Var(v) => {
                env.iter()
                    .find(|(name, _)| name == v)
                    .unwrap_or_else(|| panic!("unbound variable {v} during grounding"))
                    .1
            }
            Term::App(f, args) => {
                let args: Vec<TermId> = args.iter().map(|a| self.term_id(a, env)).collect();
                self.table
                    .get(f, &args)
                    .unwrap_or_else(|| panic!("application of {f} outside closed universe"))
            }
            Term::Ite(..) => panic!("ite must be eliminated before grounding"),
        }
    }

    /// Tseitin-encodes a quantifier-free formula under a variable
    /// environment; returns a literal equivalent to the formula.
    ///
    /// # Panics
    ///
    /// Panics if the formula contains quantifiers (matrices are QF by
    /// construction).
    pub fn encode(&mut self, f: &Formula, env: &[(Sym, TermId)]) -> Lit {
        match f {
            Formula::True => self.true_lit,
            Formula::False => !self.true_lit,
            Formula::Rel(r, args) => {
                let args: Vec<TermId> = args.iter().map(|a| self.term_id(a, env)).collect();
                self.rel_var(r, &args).pos()
            }
            Formula::Eq(a, b) => {
                let (a, b) = (self.term_id(a, env), self.term_id(b, env));
                self.eq_lit(a, b)
            }
            Formula::Not(g) => !self.encode(g, env),
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g, env)).collect();
                self.define_and(&lits)
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode(g, env)).collect();
                !self.define_and(&lits.iter().map(|&l| !l).collect::<Vec<_>>())
            }
            Formula::Implies(a, b) => {
                let (la, lb) = (self.encode(a, env), self.encode(b, env));
                !self.define_and(&[la, !lb])
            }
            Formula::Iff(a, b) => {
                let (la, lb) = (self.encode(a, env), self.encode(b, env));
                // g <-> (la <-> lb).
                let g = self.solver.new_var().pos();
                self.solver.add_clause([!g, !la, lb]);
                self.solver.add_clause([!g, la, !lb]);
                self.solver.add_clause([g, la, lb]);
                self.solver.add_clause([g, !la, !lb]);
                g
            }
            Formula::Forall(..) | Formula::Exists(..) => {
                panic!("encode: quantifier in matrix (prenexing bug)")
            }
        }
    }

    /// Replays a compiled [`Template`] under a ground environment (`env[i]`
    /// is the universe term instantiating the job's `i`-th binding);
    /// returns a literal equivalent to the instantiated matrix.
    ///
    /// Allocates exactly the variables [`Encoder::encode`] would on the
    /// resolved matrix, in the same order; gate clauses are the
    /// polarity-pruned Plaisted–Greenbaum subset (the template root is used
    /// positively, under a guard).
    ///
    /// Evaluates the template's ground-term step list under `env` into
    /// `vals` (cleared first). Returns `false` when an application falls
    /// outside the universe in bounded mode — the caller must then skip the
    /// instance (nothing has been emitted; step evaluation allocates no
    /// solver state).
    ///
    /// # Panics
    ///
    /// In full mode, panics on applications outside the closed universe (an
    /// internal invariant).
    fn eval_steps(&self, tpl: &Template, env: &[TermId], vals: &mut Vec<TermId>) -> bool {
        vals.clear();
        vals.reserve(tpl.steps.len());
        for step in &tpl.steps {
            let v = match step {
                TStep::Var(i) => env[*i],
                TStep::App(f, args) => {
                    let a: Vec<TermId> = args.iter().map(|&j| vals[j]).collect();
                    match self.table.get_owned(*f, a) {
                        Some(id) => id,
                        None if self.bound.is_some() => return false,
                        None => panic!("application of {f} outside closed universe"),
                    }
                }
            };
            vals.push(v);
        }
        true
    }

    /// Asserts `guard → matrix[env]` for one ground tuple.
    ///
    /// Matrices whose bounded CNF flattening succeeded at compile time —
    /// nearly all invariants, axioms, and frame conditions — are emitted
    /// clause-by-clause as `¬guard ∨ lits` with no Tseitin gates at all,
    /// which keeps the SAT variable count proportional to the number of
    /// distinct ground *atoms* rather than ground *instantiations*.
    /// Everything else gets a Plaisted–Greenbaum gate tree plus a
    /// two-literal root clause.
    ///
    /// In bounded mode, an instance whose terms fall outside the truncated
    /// universe is skipped *atomically* — all steps are evaluated before any
    /// clause or variable is emitted — and counted in
    /// [`Encoder::skipped_instances`].
    pub(crate) fn assert_template(&mut self, tpl: &Template, env: &[TermId], guard: Lit) {
        let mut vals = std::mem::take(&mut self.scratch_vals);
        if !self.eval_steps(tpl, env, &mut vals) {
            self.scratch_vals = vals;
            self.skipped += 1;
            return;
        }
        let Some(cnf) = tpl.cnf.as_ref().filter(|_| self.solver.config().flat_cnf) else {
            let root = self.encode_tnode(&tpl.root, &vals, Polarity::Pos);
            self.scratch_vals = vals;
            self.add_clause([!guard, root]);
            return;
        };
        let mut lits = std::mem::take(&mut self.scratch_clause);
        for clause in cnf {
            lits.clear();
            lits.push(!guard);
            for cl in clause {
                let l = match cl {
                    CLit::Rel { neg, sym, args } => {
                        let mut buf = std::mem::take(&mut self.scratch_args);
                        buf.clear();
                        buf.extend(args.iter().map(|&a| vals[a]));
                        let v = self.rel_var(sym, &buf);
                        self.scratch_args = buf;
                        if *neg {
                            v.neg()
                        } else {
                            v.pos()
                        }
                    }
                    CLit::Eq { neg, a, b } => {
                        let l = self.eq_lit(vals[*a], vals[*b]);
                        if *neg {
                            !l
                        } else {
                            l
                        }
                    }
                };
                lits.push(l);
            }
            self.solver.add_clause(lits.iter().copied());
        }
        self.scratch_clause = lits;
        self.scratch_vals = vals;
    }

    fn encode_tnode(&mut self, n: &TNode, vals: &[TermId], pol: Polarity) -> Lit {
        match n {
            TNode::True => self.true_lit,
            TNode::False => !self.true_lit,
            TNode::Rel(r, args) => {
                let mut buf = std::mem::take(&mut self.scratch_args);
                buf.clear();
                buf.extend(args.iter().map(|&a| vals[a]));
                let v = self.rel_var(r, &buf);
                self.scratch_args = buf;
                v.pos()
            }
            TNode::Eq(a, b) => self.eq_lit(vals[*a], vals[*b]),
            TNode::Not(g) => !self.encode_tnode(g, vals, pol.flip()),
            TNode::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|g| self.encode_tnode(g, vals, pol)).collect();
                self.define_and_polar(&lits, pol)
            }
            TNode::Or(fs) => {
                // ¬∧¬: the children keep the Or's polarity (two negations
                // cancel), while the conjunction gate is used flipped.
                let negs: Vec<Lit> = fs
                    .iter()
                    .map(|g| !self.encode_tnode(g, vals, pol))
                    .collect();
                !self.define_and_polar(&negs, pol.flip())
            }
            TNode::Implies(a, b) => {
                let la = self.encode_tnode(a, vals, pol.flip());
                let lb = self.encode_tnode(b, vals, pol);
                !self.define_and_polar(&[la, !lb], pol.flip())
            }
            TNode::Iff(a, b) => {
                // Both directions of each child are referenced, so children
                // are encoded under Both; the gate itself still only needs
                // the implication direction(s) its own polarity demands.
                let la = self.encode_tnode(a, vals, Polarity::Both);
                let lb = self.encode_tnode(b, vals, Polarity::Both);
                let g = self.solver.new_var().pos();
                if pol != Polarity::Neg {
                    self.solver.add_clause([!g, !la, lb]);
                    self.solver.add_clause([!g, la, !lb]);
                }
                if pol != Polarity::Pos {
                    self.solver.add_clause([g, la, lb]);
                    self.solver.add_clause([g, !la, !lb]);
                }
                g
            }
        }
    }

    /// Like [`Encoder::define_and`], but emits only the Plaisted–Greenbaum
    /// subset of the gate clauses for the gate's static polarity: `g → lits`
    /// (the short clauses) when the gate is used positively, `lits → g` (the
    /// long clause) when used negatively, both under `Both`. The gate
    /// variable is allocated unconditionally, at the same point the full
    /// Tseitin encoder would allocate it, so variable numbering is identical
    /// across both encoders.
    fn define_and_polar(&mut self, lits: &[Lit], pol: Polarity) -> Lit {
        match lits {
            [] => self.true_lit,
            [l] => *l,
            _ => {
                let g = self.solver.new_var().pos();
                if pol != Polarity::Neg {
                    for &l in lits {
                        self.solver.add_clause([!g, l]);
                    }
                }
                if pol != Polarity::Pos {
                    let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                    long.push(g);
                    self.solver.add_clause(long);
                }
                g
            }
        }
    }

    fn define_and(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.true_lit,
            [l] => *l,
            _ => {
                let g = self.solver.new_var().pos();
                for &l in lits {
                    self.solver.add_clause([!g, l]);
                }
                let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                long.push(g);
                self.solver.add_clause(long);
                g
            }
        }
    }

    /// Closes the equality machinery: computes "possibly equal" components
    /// from the seeded pairs, saturates them under function congruence,
    /// allocates equality variables for all intra-component pairs, and adds
    /// transitivity plus function/relation congruence axioms.
    ///
    /// Must be called exactly once, after all assertions are encoded and
    /// before solving. Returns the number of axiom clauses added (for
    /// diagnostics).
    pub fn finalize_equality(&mut self) -> usize {
        assert!(!self.finalized, "finalize_equality called twice");
        self.finalized = true;
        let n = self.table.len();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &self.seed_pairs {
            uf.union(a, b);
        }
        // Saturate under function congruence: if f(ā) and f(b̄) have argwise
        // possibly-equal arguments, their results are possibly equal.
        let mut terms_by_sym: BTreeMap<Sym, Vec<TermId>> = BTreeMap::new();
        for id in 0..n {
            let t = self.table.term(id);
            if !t.args.is_empty() {
                terms_by_sym.entry(t.sym).or_default().push(id);
            }
        }
        loop {
            let mut changed = false;
            for ids in terms_by_sym.values() {
                for (i, &t1) in ids.iter().enumerate() {
                    for &t2 in &ids[i + 1..] {
                        if uf.find(t1) == uf.find(t2) {
                            continue;
                        }
                        let a1 = self.table.term(t1).args.clone();
                        let a2 = self.table.term(t2).args.clone();
                        let related = a1
                            .iter()
                            .zip(&a2)
                            .all(|(&x, &y)| x == y || uf.find(x) == uf.find(y));
                        if related {
                            uf.union(t1, t2);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Group terms into components.
        let mut components: BTreeMap<usize, Vec<TermId>> = BTreeMap::new();
        for id in 0..n {
            components.entry(uf.find(id)).or_default().push(id);
        }
        components.retain(|_, v| v.len() > 1);
        let mut clauses = 0usize;
        // Allocate all intra-component equality vars.
        for comp in components.values() {
            for (i, &a) in comp.iter().enumerate() {
                for &b in &comp[i + 1..] {
                    let _ = self.eq_lit(a, b);
                }
            }
        }
        // Transitivity.
        for comp in components.values() {
            for i in 0..comp.len() {
                for j in (i + 1)..comp.len() {
                    for k in (j + 1)..comp.len() {
                        let (a, b, c) = (comp[i], comp[j], comp[k]);
                        let (ab, bc, ac) =
                            (self.eq_lit(a, b), self.eq_lit(b, c), self.eq_lit(a, c));
                        self.solver.add_clause([!ab, !bc, ac]);
                        self.solver.add_clause([!ab, !ac, bc]);
                        self.solver.add_clause([!ac, !bc, ab]);
                        clauses += 3;
                    }
                }
            }
        }
        // Function congruence between terms in the same component.
        for ids in terms_by_sym.values() {
            for (i, &t1) in ids.iter().enumerate() {
                for &t2 in &ids[i + 1..] {
                    if uf.find(t1) != uf.find(t2) {
                        continue;
                    }
                    let a1 = self.table.term(t1).args.clone();
                    let a2 = self.table.term(t2).args.clone();
                    if a1
                        .iter()
                        .zip(&a2)
                        .any(|(&x, &y)| x != y && uf.find(x) != uf.find(y))
                    {
                        continue; // some argument pair can never be equal
                    }
                    let mut clause: Vec<Lit> = Vec::new();
                    for (&x, &y) in a1.iter().zip(&a2) {
                        if x != y {
                            let e = self.eq_lit(x, y);
                            clause.push(!e);
                        }
                    }
                    clause.push(self.eq_lit(t1, t2));
                    self.solver.add_clause(clause);
                    clauses += 1;
                }
            }
        }
        // Relation congruence between existing atoms whose argument tuples
        // are componentwise related. Bucket atoms by (symbol, component
        // signature) so unrelated atoms never pair up.
        let mut buckets: AtomBuckets = BTreeMap::new();
        for ((sym, args), var) in self.rel_atoms.clone() {
            let sig: Vec<usize> = args.iter().map(|&a| uf.find(a)).collect();
            buckets.entry((sym, sig)).or_default().push((args, var));
        }
        for atoms in buckets.values() {
            for (i, (args1, v1)) in atoms.iter().enumerate() {
                for (args2, v2) in &atoms[i + 1..] {
                    let mut guard: Vec<Lit> = Vec::new();
                    for (&x, &y) in args1.iter().zip(args2) {
                        if x != y {
                            let e = self.eq_lit(x, y);
                            guard.push(!e);
                        }
                    }
                    let mut c1 = guard.clone();
                    c1.push(v1.neg());
                    c1.push(v2.pos());
                    self.solver.add_clause(c1);
                    let mut c2 = guard;
                    c2.push(v2.neg());
                    c2.push(v1.pos());
                    self.solver.add_clause(c2);
                    clauses += 2;
                }
            }
        }
        clauses
    }

    /// Solves with the *lazy* equality discipline: no equality axioms are
    /// generated up front; after each SAT answer, the model is checked for
    /// transitivity/congruence violations and only the violated axioms are
    /// added, until the model is equality-consistent or the query becomes
    /// unsatisfiable. Returns the result and the number of repair rounds.
    ///
    /// UNSAT answers are sound (fewer axioms only weakens the clause set);
    /// SAT answers are certified consistent before being returned.
    /// `max_rounds = None` runs to completion; `Some(n)` gives up after `n`
    /// repair rounds, returning `None` (unknown) — used by best-effort
    /// callers such as CTI minimization.
    pub fn solve_lazy(
        &mut self,
        assumptions: &[Lit],
        max_rounds: Option<usize>,
    ) -> (Option<ivy_sat::SolveResult>, usize) {
        let (result, rounds) = self.solve_lazy_with(assumptions, max_rounds, None);
        let mapped = match result {
            LazyResult::Sat => Some(ivy_sat::SolveResult::Sat),
            LazyResult::Unsat => Some(ivy_sat::SolveResult::Unsat),
            LazyResult::GaveUp | LazyResult::Deadline | LazyResult::Conflicts => None,
        };
        (mapped, rounds)
    }

    /// Like [`Encoder::solve_lazy`], but additionally bounded by a total
    /// conflict budget (`max_conflicts`, across all repair rounds) and by
    /// any wall-clock deadline set on the underlying solver via
    /// [`Solver::set_deadline`]. The returned [`LazyResult`] distinguishes
    /// repair-loop exhaustion ([`LazyResult::GaveUp`], the historical
    /// `None`) from the caller's budget tripping
    /// ([`LazyResult::Deadline`] / [`LazyResult::Conflicts`]), so the EPR
    /// layer can degrade to `Unknown` with the right reason.
    pub fn solve_lazy_with(
        &mut self,
        assumptions: &[Lit],
        max_rounds: Option<usize>,
        max_conflicts: Option<u64>,
    ) -> (LazyResult, usize) {
        // A bounded repair loop also bounds each SAT call; an unbounded one
        // runs each call to completion.
        let conflict_budget = if max_rounds.is_some() {
            200_000
        } else {
            u64::MAX
        };
        self.finalized = true;
        // Even the unbounded discipline caps each round: adding a bounded
        // batch of violated axioms and re-solving usually collapses the
        // spurious equality classes, making the remaining millions of
        // would-be axioms moot. Unlike the bounded mode, the unbounded loop
        // never gives up — it just takes more (cheap) rounds.
        let per_round_cap = if max_rounds.is_some() {
            Some(4_000)
        } else {
            Some(50_000)
        };
        // Start from canonical phases: a saved model from an earlier query
        // in this session would otherwise bias this query's first model
        // toward stale truths, inflating the repair scan's equality classes.
        self.solver.reset_phases();
        let start_conflicts = self.solver.stats().conflicts;
        let cap = max_conflicts.unwrap_or(u64::MAX);
        let mut rounds = 0;
        let mut total_added = 0usize;
        loop {
            let spent = self.solver.stats().conflicts - start_conflicts;
            let remaining = cap.saturating_sub(spent);
            if remaining == 0 {
                return (LazyResult::Conflicts, rounds);
            }
            let round_budget = conflict_budget.min(remaining);
            match self.solver.solve_budgeted(assumptions, round_budget) {
                None => {
                    // Tell the caller's budget apart from the internal
                    // per-round cap: only a deadline or the caller's total
                    // conflict budget degrade to Unknown; the internal cap
                    // is the historical best-effort give-up.
                    let reason = match self.solver.last_interrupt() {
                        Some(Interrupt::Deadline) => LazyResult::Deadline,
                        Some(Interrupt::Conflicts)
                            if self.solver.stats().conflicts - start_conflicts >= cap =>
                        {
                            LazyResult::Conflicts
                        }
                        _ => LazyResult::GaveUp,
                    };
                    return (reason, rounds);
                }
                Some(ivy_sat::SolveResult::Unsat) => return (LazyResult::Unsat, rounds),
                Some(ivy_sat::SolveResult::Sat) => {
                    let added = self.repair_equality(per_round_cap);
                    if added == 0 {
                        return (LazyResult::Sat, rounds);
                    }
                    total_added += added;
                    rounds += 1;
                    if max_rounds.is_some_and(|m| rounds >= m)
                        || (max_rounds.is_some() && total_added > 200_000)
                    {
                        return (LazyResult::GaveUp, rounds);
                    }
                }
            }
        }
    }

    /// Adds the equality axioms violated by the current model; returns how
    /// many clauses were added (0 = model is equality-consistent). With a
    /// cap, stops adding once the round's budget is spent (the loop then
    /// continues with a partial repair).
    fn repair_equality(&mut self, cap: Option<usize>) -> usize {
        let over = |added: usize| cap.is_some_and(|c| added >= c);
        let n = self.table.len();
        let mut uf = UnionFind::new(n);
        for (&(a, b), &v) in &self.eq_vars {
            if self.solver.model_value(v) == Some(true) {
                uf.union(a, b);
            }
        }
        let mut added = 0usize;

        // Transitivity: an equality variable that is false although its
        // endpoints are connected through true equalities. Repair by fully
        // axiomatizing the (small) true-equality class.
        let mut violated_classes: Vec<usize> = Vec::new();
        for (&(a, b), &v) in &self.eq_vars {
            if self.solver.model_value(v) == Some(false) && uf.find(a) == uf.find(b) {
                let root = uf.find(a);
                if !violated_classes.contains(&root) {
                    violated_classes.push(root);
                }
            }
        }
        if !violated_classes.is_empty() {
            let mut members: BTreeMap<usize, Vec<TermId>> = BTreeMap::new();
            for t in 0..n {
                let r = uf.find(t);
                if violated_classes.contains(&r) {
                    members.entry(r).or_default().push(t);
                }
            }
            'transitivity: for class in members.values() {
                for i in 0..class.len() {
                    for j in (i + 1)..class.len() {
                        for k in (j + 1)..class.len() {
                            if over(added) {
                                break 'transitivity;
                            }
                            let key = LazyAxiom::Transitivity(class[i], class[j], class[k]);
                            if !self.lazy_added.insert(key) {
                                continue;
                            }
                            let (a, b, c) = (class[i], class[j], class[k]);
                            let (ab, bc, ac) =
                                (self.eq_lit(a, b), self.eq_lit(b, c), self.eq_lit(a, c));
                            self.solver.add_clause([!ab, !bc, ac]);
                            self.solver.add_clause([!ab, !ac, bc]);
                            self.solver.add_clause([!ac, !bc, ab]);
                            added += 3;
                        }
                    }
                }
            }
        }

        // Function congruence: same function, argwise model-equal arguments,
        // results not model-equal.
        let mut terms_by_sym: BTreeMap<&Sym, Vec<TermId>> = BTreeMap::new();
        for id in 0..n {
            let t = self.table.term(id);
            if !t.args.is_empty() {
                terms_by_sym.entry(&t.sym).or_default().push(id);
            }
        }
        let mut fun_pairs: Vec<(TermId, TermId)> = Vec::new();
        for ids in terms_by_sym.values() {
            for (i, &t1) in ids.iter().enumerate() {
                for &t2 in &ids[i + 1..] {
                    if uf.find(t1) == uf.find(t2) {
                        continue;
                    }
                    let a1 = &self.table.term(t1).args;
                    let a2 = &self.table.term(t2).args;
                    if a1
                        .iter()
                        .zip(a2)
                        .all(|(&x, &y)| x == y || uf.find(x) == uf.find(y))
                        && !self.lazy_added.contains(&LazyAxiom::FunCongruence(t1, t2))
                    {
                        fun_pairs.push((t1, t2));
                    }
                }
            }
        }
        for (t1, t2) in fun_pairs {
            if over(added) {
                break;
            }
            // Mark only when the clause is really added, so pairs cut off by
            // the cap are retried in a later round.
            self.lazy_added.insert(LazyAxiom::FunCongruence(t1, t2));
            let a1 = self.table.term(t1).args.clone();
            let a2 = self.table.term(t2).args.clone();
            let mut clause: Vec<Lit> = Vec::new();
            for (x, y) in a1.into_iter().zip(a2) {
                if x != y {
                    let e = self.eq_lit(x, y);
                    clause.push(!e);
                }
            }
            clause.push(self.eq_lit(t1, t2));
            self.solver.add_clause(clause);
            added += 1;
        }

        // Relation congruence: same symbol, argwise model-equal tuples,
        // differing truth values.
        let mut buckets: AtomBuckets = BTreeMap::new();
        for ((sym, args), var) in self.rel_atoms.clone() {
            let sig: Vec<usize> = args.iter().map(|&a| uf.find(a)).collect();
            buckets.entry((sym, sig)).or_default().push((args, var));
        }
        'relcong: for atoms in buckets.values() {
            for (i, (args1, v1)) in atoms.iter().enumerate() {
                for (args2, v2) in &atoms[i + 1..] {
                    if over(added) {
                        break 'relcong;
                    }
                    if self.solver.model_value(*v1) == self.solver.model_value(*v2) {
                        continue;
                    }
                    let key = LazyAxiom::RelCongruence(*v1.min(v2), *v1.max(v2));
                    if !self.lazy_added.insert(key) {
                        continue;
                    }
                    let mut guard: Vec<Lit> = Vec::new();
                    for (&x, &y) in args1.iter().zip(args2) {
                        if x != y {
                            let e = self.eq_lit(x, y);
                            guard.push(!e);
                        }
                    }
                    let mut c1 = guard.clone();
                    c1.push(v1.neg());
                    c1.push(v2.pos());
                    self.solver.add_clause(c1);
                    let mut c2 = guard;
                    c2.push(v2.neg());
                    c2.push(v1.pos());
                    self.solver.add_clause(c2);
                    added += 2;
                }
            }
        }
        added
    }

    /// Mutable access to the underlying SAT solver (for solving).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Shared access to the underlying SAT solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// After a SAT answer: the set of (atom, value) pairs and the true
    /// equalities, for model extraction.
    pub(crate) fn model_parts(&self) -> ModelParts<'_> {
        ModelParts { enc: self }
    }
}

pub(crate) struct ModelParts<'a> {
    enc: &'a Encoder,
}

impl ModelParts<'_> {
    /// True-equality union-find over the universe per the SAT model.
    pub(crate) fn equality_classes(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.enc.table.len());
        for (&(a, b), &v) in &self.enc.eq_vars {
            if self.enc.solver.model_value(v) == Some(true) {
                uf.union(a, b);
            }
        }
        uf
    }

    /// Iterates over ground relation atoms with their model values.
    pub(crate) fn atoms(&self) -> impl Iterator<Item = (&Sym, &[TermId], bool)> + '_ {
        self.enc.rel_atoms.iter().map(|((sym, args), &v)| {
            (
                sym,
                args.as_slice(),
                self.enc.solver.model_value(v) == Some(true),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::Signature;
    use ivy_sat::SolveResult;

    fn simple_table() -> (Signature, TermTable) {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_constant("b", "s").unwrap();
        sig.add_constant("c", "s").unwrap();
        let table = TermTable::build(&sig);
        (sig, table)
    }

    #[test]
    fn encode_simple_conflict() {
        let (_, table) = simple_table();
        let mut enc = Encoder::new(table);
        let f1 = ivy_fol::parse_formula("r(a)").unwrap();
        let f2 = ivy_fol::parse_formula("~r(a)").unwrap();
        let l1 = enc.encode(&f1, &[]);
        let l2 = enc.encode(&f2, &[]);
        enc.add_clause([l1]);
        enc.add_clause([l2]);
        enc.finalize_equality();
        assert_eq!(enc.solver_mut().solve(), SolveResult::Unsat);
    }

    #[test]
    fn equality_transitivity_enforced() {
        let (_, table) = simple_table();
        let mut enc = Encoder::new(table);
        // a=b & b=c & r(a) & ~r(c) is unsat (needs transitivity + congruence).
        let f = ivy_fol::parse_formula("a = b & b = c & r(a) & ~r(c)").unwrap();
        let l = enc.encode(&f, &[]);
        enc.add_clause([l]);
        enc.finalize_equality();
        assert_eq!(enc.solver_mut().solve(), SolveResult::Unsat);
    }

    #[test]
    fn equality_sat_when_consistent() {
        let (_, table) = simple_table();
        let mut enc = Encoder::new(table);
        let f = ivy_fol::parse_formula("a = b & r(a) & r(b) & ~r(c)").unwrap();
        let l = enc.encode(&f, &[]);
        enc.add_clause([l]);
        enc.finalize_equality();
        assert_eq!(enc.solver_mut().solve(), SolveResult::Sat);
        let classes = enc.model_parts().equality_classes();
        let mut uf = classes;
        let a = enc.table().get(&Sym::new("a"), &[]).unwrap();
        let b = enc.table().get(&Sym::new("b"), &[]).unwrap();
        assert_eq!(uf.find(a), uf.find(b));
    }

    #[test]
    fn function_congruence_enforced() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_sort("t").unwrap();
        sig.add_function("f", ["s"], "t").unwrap();
        sig.add_constant("a", "s").unwrap();
        sig.add_constant("b", "s").unwrap();
        let table = TermTable::build(&sig);
        let mut enc = Encoder::new(table);
        // a=b & f(a) ~= f(b) is unsat by congruence.
        let f = ivy_fol::parse_formula("a = b & f(a) ~= f(b)").unwrap();
        let l = enc.encode(&f, &[]);
        enc.add_clause([l]);
        enc.finalize_equality();
        assert_eq!(enc.solver_mut().solve(), SolveResult::Unsat);
    }

    #[test]
    fn unrelated_terms_stay_apart() {
        let (_, table) = simple_table();
        let mut enc = Encoder::new(table);
        // No equality atoms at all: r(a) & ~r(b) is satisfiable.
        let f = ivy_fol::parse_formula("r(a) & ~r(b)").unwrap();
        let l = enc.encode(&f, &[]);
        enc.add_clause([l]);
        let axioms = enc.finalize_equality();
        assert_eq!(axioms, 0, "no equality atoms, no axioms");
        assert_eq!(enc.solver_mut().solve(), SolveResult::Sat);
    }
}
