//! Ground-term universes for EPR extended with stratified functions.
//!
//! After Skolemization, an `∃*∀*` sentence mentions only constants and
//! (stratified) function symbols. The Herbrand universe — all ground terms —
//! is finite precisely because the functions are stratified (Section 3.3 of
//! the paper): each application strictly descends the sort order, so term
//! depth is bounded by the number of sorts.

use std::collections::{BTreeMap, HashMap};

use ivy_fol::{Signature, Sort, Sym};

/// Index of a ground term in a [`TermTable`].
pub type TermId = usize;

/// A ground term: a function symbol applied to previously-built ground terms.
/// Constants have no arguments.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundTerm {
    /// The head function symbol (or constant).
    pub sym: Sym,
    /// Argument term ids.
    pub args: Vec<TermId>,
}

/// The finite Herbrand universe of a signature: every ground term, grouped
/// by sort.
///
/// With an unstratified signature the full universe is infinite; the
/// bounded constructors ([`TermTable::build_bounded`] /
/// [`TermTable::extend_bounded`]) cut the closure at a term-depth bound
/// and record that truncation happened ([`TermTable::truncated`]), which
/// the bounded-instantiation pipeline uses to tell genuine SAT models from
/// artifacts of the bound.
#[derive(Clone, Debug, Default)]
pub struct TermTable {
    terms: Vec<GroundTerm>,
    sorts: Vec<Sort>,
    /// Term depth per id: constants are 0, applications `1 + max(args)`.
    depths: Vec<usize>,
    index: HashMap<GroundTerm, TermId>,
    by_sort: BTreeMap<Sort, Vec<TermId>>,
    /// Whether some ground term was skipped for exceeding a depth bound.
    truncated: bool,
}

impl TermTable {
    /// Builds the ground-term universe of `sig`.
    ///
    /// Every sort is guaranteed at least one term: sorts without constants
    /// receive no table entry here — callers that need non-empty domains
    /// should add a fresh constant to the signature first (see
    /// [`ensure_inhabited`]).
    ///
    /// # Panics
    ///
    /// Panics if the signature is not stratified (the closure would diverge);
    /// callers validate stratification first.
    pub fn build(sig: &Signature) -> TermTable {
        let mut table = TermTable::default();
        table.extend(sig);
        table
    }

    /// Builds the ground-term universe of `sig` cut at term depth `depth`
    /// (constants are depth 0, so `depth = 0` admits only constants). The
    /// signature need *not* be stratified: the depth bound makes the
    /// closure finite regardless. [`TermTable::truncated`] reports whether
    /// any term was left out.
    pub fn build_bounded(sig: &Signature, depth: usize) -> TermTable {
        let mut table = TermTable::default();
        table.extend_bounded(sig, depth);
        table
    }

    /// Extends the universe in place with every ground term of `sig` not yet
    /// present: newly declared constants (typically Skolem constants from a
    /// later query of an incremental session) and the function closure over
    /// them. Existing term ids are preserved; new terms receive ids starting
    /// at the returned watermark (the term count *before* the extension), so
    /// callers can enumerate the delta as `watermark..self.len()`.
    ///
    /// # Panics
    ///
    /// Panics if the signature is not stratified (the closure would diverge);
    /// callers validate stratification first.
    pub fn extend(&mut self, sig: &Signature) -> usize {
        sig.stratification()
            .expect("TermTable requires a stratified signature");
        self.extend_bounded(sig, usize::MAX)
    }

    /// [`TermTable::extend`] with the function closure cut at term depth
    /// `depth`; sets the [`TermTable::truncated`] flag when any application
    /// is skipped for exceeding the bound. Terminates for *any* signature:
    /// with finitely many symbols there are finitely many terms of bounded
    /// depth.
    pub fn extend_bounded(&mut self, sig: &Signature, depth: usize) -> usize {
        let old_len = self.terms.len();
        // Seed with constants.
        for (name, sort) in sig.constants() {
            self.intern(
                GroundTerm {
                    sym: *name,
                    args: Vec::new(),
                },
                *sort,
                0,
            );
        }
        // Close under functions: repeat until no new terms appear. Each pass
        // applies every function to every argument tuple currently present.
        loop {
            let mut added = false;
            let snapshot: BTreeMap<Sort, Vec<TermId>> = self.by_sort.clone();
            for (name, decl) in sig.functions() {
                if decl.is_constant() {
                    continue;
                }
                let mut tuples = vec![Vec::new()];
                for arg_sort in &decl.args {
                    let candidates = snapshot.get(arg_sort).cloned().unwrap_or_default();
                    let mut next = Vec::with_capacity(tuples.len() * candidates.len());
                    for prefix in &tuples {
                        for &c in &candidates {
                            let mut t = prefix.clone();
                            t.push(c);
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                for args in tuples {
                    let d = args
                        .iter()
                        .map(|&a| self.depths[a])
                        .max()
                        .unwrap_or(0)
                        .saturating_add(1);
                    if d > depth {
                        self.truncated = true;
                        continue;
                    }
                    let gt = GroundTerm { sym: *name, args };
                    if !self.index.contains_key(&gt) {
                        self.intern(gt, decl.ret, d);
                        added = true;
                    }
                }
            }
            if !added {
                break;
            }
        }
        old_len
    }

    /// Whether some ground term was skipped for exceeding a depth bound —
    /// i.e. whether the bound was *load-bearing* for universe construction.
    /// Sticky across extensions.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    fn intern(&mut self, gt: GroundTerm, sort: Sort, depth: usize) -> TermId {
        if let Some(&id) = self.index.get(&gt) {
            return id;
        }
        let id = self.terms.len();
        self.terms.push(gt.clone());
        self.sorts.push(sort);
        self.depths.push(depth);
        self.index.insert(gt, id);
        self.by_sort.entry(sort).or_default().push(id);
        id
    }

    /// Looks up a ground term.
    pub fn get(&self, sym: &Sym, args: &[TermId]) -> Option<TermId> {
        self.index
            .get(&GroundTerm {
                sym: *sym,
                args: args.to_vec(),
            })
            .copied()
    }

    /// Like [`TermTable::get`] but takes the argument vector by value,
    /// avoiding the key allocation on hot lookup paths.
    pub fn get_owned(&self, sym: Sym, args: Vec<TermId>) -> Option<TermId> {
        self.index.get(&GroundTerm { sym, args }).copied()
    }

    /// The term with the given id.
    pub fn term(&self, id: TermId) -> &GroundTerm {
        &self.terms[id]
    }

    /// The sort of a term.
    pub fn sort(&self, id: TermId) -> &Sort {
        &self.sorts[id]
    }

    /// All terms of a sort.
    pub fn of_sort(&self, sort: &Sort) -> &[TermId] {
        self.by_sort.get(sort).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of ground terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Renders a term for diagnostics, e.g. `idf(n)`.
    pub fn display(&self, id: TermId) -> String {
        let t = self.term(id);
        if t.args.is_empty() {
            t.sym.to_string()
        } else {
            let args: Vec<String> = t.args.iter().map(|&a| self.display(a)).collect();
            format!("{}({})", t.sym, args.join(", "))
        }
    }
}

/// Adds a fresh constant to every sort of `sig` that would otherwise have no
/// ground terms, so domains stay non-empty (first-order semantics requires
/// inhabited sorts). Returns the constants added.
pub fn ensure_inhabited(sig: &mut Signature) -> Vec<(Sym, Sort)> {
    // A sort is inhabited if some constant has it as return sort, or some
    // function chain produces it. Functions only produce terms when their
    // argument sorts are inhabited; iterate to a fixpoint.
    let mut inhabited: BTreeMap<Sort, bool> = sig.sorts().iter().map(|s| (*s, false)).collect();
    for (_, sort) in sig.constants() {
        inhabited.insert(*sort, true);
    }
    let mut added = Vec::new();
    loop {
        // Propagate inhabitation through functions to a fixpoint.
        loop {
            let mut changed = false;
            for (_, decl) in sig.functions() {
                if decl.is_constant() {
                    continue;
                }
                let args_ok = decl.args.iter().all(|s| inhabited[s]);
                if args_ok && !inhabited[&decl.ret] {
                    inhabited.insert(decl.ret, true);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Seed one still-empty sort (if any) and re-propagate. Prefer the
        // *largest* sort in the stratification order: functions map larger
        // sorts to smaller ones, so seeding high lets propagation fill the
        // sorts below without redundant constants. Unstratified signatures
        // (bounded mode) have no such order; declaration order works — the
        // heuristic only saves redundant constants, inhabitation itself
        // needs any still-empty sort seeded.
        let order = sig
            .analyze_stratification()
            .order
            .unwrap_or_else(|| sig.sorts().to_vec());
        let Some(sort) = order.into_iter().rev().find(|s| !inhabited[s]) else {
            break;
        };
        let name = ivy_fol::xform::fresh_constant_name(sig, &format!("some_{sort}"));
        sig.add_constant(name, sort).expect("fresh constant name");
        inhabited.insert(sort, true);
        added.push((name, sort));
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leader_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_constant("n", "node").unwrap();
        sig.add_constant("m", "node").unwrap();
        sig
    }

    #[test]
    fn universe_closes_under_functions() {
        let sig = leader_sig();
        let table = TermTable::build(&sig);
        // n, m, idf(n), idf(m).
        assert_eq!(table.len(), 4);
        assert_eq!(table.of_sort(&Sort::new("node")).len(), 2);
        assert_eq!(table.of_sort(&Sort::new("id")).len(), 2);
        let n = table.get(&Sym::new("n"), &[]).unwrap();
        let idn = table.get(&Sym::new("idf"), &[n]).unwrap();
        assert_eq!(table.display(idn), "idf(n)");
        assert_eq!(table.sort(idn), &Sort::new("id"));
    }

    #[test]
    fn two_level_stratification() {
        let mut sig = Signature::new();
        sig.add_sort("a").unwrap();
        sig.add_sort("b").unwrap();
        sig.add_sort("c").unwrap();
        sig.add_function("f", ["a"], "b").unwrap();
        sig.add_function("g", ["b"], "c").unwrap();
        sig.add_constant("x", "a").unwrap();
        let table = TermTable::build(&sig);
        // x, f(x), g(f(x)).
        assert_eq!(table.len(), 3);
        let x = table.get(&Sym::new("x"), &[]).unwrap();
        let fx = table.get(&Sym::new("f"), &[x]).unwrap();
        assert!(table.get(&Sym::new("g"), &[fx]).is_some());
    }

    #[test]
    fn binary_function_universe() {
        let mut sig = Signature::new();
        sig.add_sort("a").unwrap();
        sig.add_sort("b").unwrap();
        sig.add_function("pair", ["a", "a"], "b").unwrap();
        sig.add_constant("x", "a").unwrap();
        sig.add_constant("y", "a").unwrap();
        let table = TermTable::build(&sig);
        // x, y, pair over 4 tuples.
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn ensure_inhabited_adds_constants() {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        // No constants at all: node is empty; id becomes inhabited only via
        // idf once node is inhabited.
        let added = ensure_inhabited(&mut sig);
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].1, Sort::new("node"));
        let table = TermTable::build(&sig);
        assert_eq!(table.of_sort(&Sort::new("node")).len(), 1);
        assert_eq!(table.of_sort(&Sort::new("id")).len(), 1);
    }

    #[test]
    fn ensure_inhabited_noop_when_populated() {
        let mut sig = leader_sig();
        assert!(ensure_inhabited(&mut sig).is_empty());
    }

    #[test]
    fn bounded_universe_cuts_unstratified_closure() {
        // next : s -> s is unstratified; the full closure would diverge.
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        sig.add_constant("zero", "s").unwrap();
        let table = TermTable::build_bounded(&sig, 2);
        // zero, next(zero), next(next(zero)).
        assert_eq!(table.len(), 3);
        assert!(table.truncated());
        let zero = table.get(&Sym::new("zero"), &[]).unwrap();
        let one = table.get(&Sym::new("next"), &[zero]).unwrap();
        assert!(table.get(&Sym::new("next"), &[one]).is_some());
        // Depth 0 admits constants only.
        let table = TermTable::build_bounded(&sig, 0);
        assert_eq!(table.len(), 1);
        assert!(table.truncated());
    }

    #[test]
    fn bounded_universe_not_truncated_when_closure_fits() {
        // Stratified signature whose closure sits within the bound: the
        // bounded build must match the full build and report no truncation.
        let sig = leader_sig();
        let full = TermTable::build(&sig);
        let bounded = TermTable::build_bounded(&sig, 8);
        assert_eq!(bounded.len(), full.len());
        assert!(!bounded.truncated());
        assert!(!full.truncated());
    }

    #[test]
    fn ensure_inhabited_tolerates_unstratified_signatures() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_sort("t").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        let added = ensure_inhabited(&mut sig);
        assert_eq!(added.len(), 2, "both empty sorts get seeded");
    }

    #[test]
    fn extend_preserves_ids_and_reports_watermark() {
        let mut sig = leader_sig();
        let mut table = TermTable::build(&sig);
        let n = table.get(&Sym::new("n"), &[]).unwrap();
        let before = table.len();
        // A new constant closes under idf, adding two terms.
        sig.add_constant("k", "node").unwrap();
        let watermark = table.extend(&sig);
        assert_eq!(watermark, before);
        assert_eq!(table.len(), before + 2);
        assert_eq!(table.get(&Sym::new("n"), &[]), Some(n), "ids preserved");
        let k = table.get(&Sym::new("k"), &[]).unwrap();
        assert!(k >= watermark);
        assert!(table.get(&Sym::new("idf"), &[k]).is_some());
        // Extending again with no new symbols is a no-op.
        assert_eq!(table.extend(&sig), before + 2);
        assert_eq!(table.len(), before + 2);
    }
}
