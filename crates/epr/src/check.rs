//! The EPR satisfiability check: the decision procedure behind every Ivy
//! query (Theorem 3.3 of the paper).
//!
//! Input: a signature with stratified functions and a set of labeled
//! sentences that are `∃*∀*` after prenexing. Output: a finite model
//! (structure) or an UNSAT core over the labels.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ivy_fol::intern::{FormulaId, FormulaNode, Interner};
use ivy_fol::xform::Block;
use ivy_fol::{
    Binding, Elem, Formula, SigError, Signature, SkolemError, Sort, SortError, Structure, Sym,
};
use ivy_sat::{Lit, SolveResult, SolverConfig, Stats};
use ivy_telemetry::{counter_add, Budget, QueryReport, Span, StopReason};

use crate::encode::{Encoder, EqualityMode, LazyResult, Template};

/// A Skolemized assertion split into one miniscoped universal job: the
/// bindings to enumerate and the pre-compiled instantiation template of the
/// matrix (see [`Template`]).
#[derive(Clone, Debug)]
pub(crate) struct GroundJob {
    pub(crate) bindings: Vec<Binding>,
    pub(crate) template: Template,
}
use crate::ground::{ensure_inhabited, TermTable};

/// The default cap on universal instantiations per query, shared by every
/// engine built on this crate (verification conditions, BMC, Houdini, …).
/// Large enough for all bundled protocols, small enough to fail fast when a
/// query's grounding explodes.
pub const DEFAULT_INSTANCE_LIMIT: u64 = 4_000_000;

/// How universal quantifiers are instantiated over the ground universe.
///
/// [`Full`](InstantiationMode::Full) is the classical EPR pipeline: the
/// signature must be stratified and every assertion `∃*∀*`, the term
/// universe is the (finite) closure under all functions, and both SAT and
/// UNSAT are verdicts.
///
/// [`Bounded`](InstantiationMode::Bounded) relaxes both preconditions:
/// unstratified signatures and `∀∃` alternations (Skolemized to genuine
/// functions) are admitted, but ground terms are only built up to the given
/// nesting depth and instantiations that would mention deeper terms are
/// skipped. The bounded clause set is a *subset* of the full ground
/// instantiation, so by Herbrand's theorem UNSAT answers remain verdicts;
/// a SAT answer while the bound was load-bearing (the universe was
/// truncated or any instantiation was skipped) degrades to
/// [`EprOutcome::Unknown`] with [`StopReason::BoundReached`]. When the
/// closure happens to fit entirely under the bound, nothing was cut and
/// SAT is genuine too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstantiationMode {
    /// Complete instantiation over the closed universe (requires the
    /// stratified `∃*∀*` fragment). The default.
    #[default]
    Full,
    /// Instantiate only ground terms of function-nesting depth at most the
    /// given bound. Admits non-stratified signatures and `∀∃` assertions.
    Bounded(usize),
}

impl InstantiationMode {
    /// The depth bound, if any.
    pub fn depth(&self) -> Option<usize> {
        match self {
            InstantiationMode::Full => None,
            InstantiationMode::Bounded(d) => Some(*d),
        }
    }

    /// Whether this is a bounded mode.
    pub fn is_bounded(&self) -> bool {
        matches!(self, InstantiationMode::Bounded(_))
    }
}

impl fmt::Display for InstantiationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiationMode::Full => write!(f, "full"),
            InstantiationMode::Bounded(d) => write!(f, "bounded({d})"),
        }
    }
}

/// Errors from the EPR check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EprError {
    /// Signature problem (e.g. not stratified).
    Sig(SigError),
    /// An assertion is ill-sorted.
    Sort(SortError),
    /// An assertion is outside `∃*∀*` (or open), so Skolemization fails.
    Skolem(SkolemError),
    /// Grounding would create more instantiations than the configured limit.
    TooManyInstances {
        /// Estimated number of ground instances.
        estimated: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The lazy equality repair loop exceeded its configured round limit
    /// (only with [`EprCheck::set_lazy_round_limit`]); the query is
    /// undecided. Best-effort callers treat this as "give up".
    RepairLimit {
        /// Rounds performed before giving up.
        rounds: usize,
    },
    /// A query stopped inside its resource [`Budget`] (deadline or
    /// conflict cap) without reaching a verdict. Raised by the
    /// verification loops when a query returns
    /// [`EprOutcome::Unknown`] — the enclosing analysis is
    /// *inconclusive*, never a proof or a refutation.
    Inconclusive(StopReason),
}

impl fmt::Display for EprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EprError::Sig(e) => write!(f, "signature error: {e}"),
            EprError::Sort(e) => write!(f, "sort error: {e}"),
            EprError::Skolem(e) => write!(f, "fragment error: {e}"),
            EprError::TooManyInstances { estimated, limit } => write!(
                f,
                "grounding needs ~{estimated} instances, over the limit of {limit}"
            ),
            EprError::RepairLimit { rounds } => {
                write!(f, "lazy equality repair gave up after {rounds} rounds")
            }
            EprError::Inconclusive(reason) => {
                write!(f, "query inconclusive: {reason}")
            }
        }
    }
}

impl std::error::Error for EprError {}

impl From<SigError> for EprError {
    fn from(e: SigError) -> Self {
        EprError::Sig(e)
    }
}

impl From<SortError> for EprError {
    fn from(e: SortError) -> Self {
        EprError::Sort(e)
    }
}

impl From<SkolemError> for EprError {
    fn from(e: SkolemError) -> Self {
        EprError::Skolem(e)
    }
}

/// A finite model of the asserted sentences.
#[derive(Clone, Debug)]
pub struct Model {
    /// The model as a finite first-order structure. Its signature is the
    /// *extended* signature (original symbols plus Skolem constants).
    pub structure: Structure,
}

/// Outcome of [`EprCheck::check`].
#[derive(Clone, Debug)]
pub enum EprOutcome {
    /// Satisfiable, with a finite model (the finite-model property of EPR).
    Sat(Box<Model>),
    /// Unsatisfiable; the labels of an unsatisfiable subset of assertions.
    Unsat(Vec<String>),
    /// The query's [`Budget`] ran out (deadline or conflict cap) before a
    /// verdict. Partial statistics are still recorded — see
    /// [`EprCheck::stats`] / [`EprCheck::report`]. Callers must treat this
    /// as *inconclusive*, never as UNSAT.
    Unknown(StopReason),
}

impl EprOutcome {
    /// Whether the outcome is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, EprOutcome::Sat(_))
    }

    /// Stable lower-case tag for telemetry: `sat`, `unsat`, or `unknown`.
    pub fn tag(&self) -> &'static str {
        match self {
            EprOutcome::Sat(_) => "sat",
            EprOutcome::Unsat(_) => "unsat",
            EprOutcome::Unknown(_) => "unknown",
        }
    }
}

/// Diagnostics about the last grounding (sizes, for benchmarking).
#[derive(Clone, Copy, Debug, Default)]
pub struct GroundStats {
    /// Ground terms in the universe.
    pub universe: usize,
    /// Universal instantiations performed.
    pub instances: u64,
    /// Equality axiom clauses added (eager mode) or added lazily.
    pub equality_clauses: usize,
    /// Lazy-equality repair rounds performed (0 in eager mode).
    pub equality_rounds: usize,
    /// SAT variables allocated.
    pub sat_vars: usize,
    /// Problem (non-learnt) clauses in the SAT solver.
    pub sat_clauses: usize,
    /// Ground-atom (Tseitin) cache hits of the encoder.
    pub atom_hits: u64,
    /// Ground-atom cache misses of the encoder.
    pub atom_misses: u64,
    /// SAT solver statistics.
    pub sat: Stats,
}

impl GroundStats {
    /// The single stats builder shared by [`EprCheck::check`] and
    /// `EprSession::check`: everything solver- and encoder-derived is read
    /// here, in one place, so the two paths cannot silently diverge.
    pub(crate) fn collect(enc: &Encoder, instances: u64, eq_clauses: usize, rounds: usize) -> Self {
        let (atom_hits, atom_misses) = enc.atom_cache_stats();
        GroundStats {
            universe: enc.table().len(),
            instances,
            equality_clauses: eq_clauses,
            equality_rounds: rounds,
            sat_vars: enc.solver().num_vars(),
            sat_clauses: enc.solver().num_clauses(),
            atom_hits,
            atom_misses,
            sat: enc.solver().stats(),
        }
    }

    /// Converts to a telemetry [`QueryReport`] covering the *delta* from
    /// `prev` (solver counters are cumulative per solver; per-query numbers
    /// are differences between consecutive snapshots). Also publishes the
    /// delta to the global telemetry counters when recording is enabled.
    pub(crate) fn report_delta(
        &self,
        prev: &GroundStats,
        outcome: &str,
        stop: Option<StopReason>,
        wall_nanos: u128,
    ) -> QueryReport {
        let (intern_hits, intern_misses) = ivy_fol::intern::cache_stats();
        let report = QueryReport {
            queries: 1,
            outcome: outcome.to_string(),
            stop,
            wall_nanos,
            universe: self.universe as u64,
            instances: self.instances.saturating_sub(prev.instances),
            // Equality repair numbers are already per-call (the caller
            // passes this check's round count), so no delta.
            equality_rounds: self.equality_rounds as u64,
            equality_clauses: self.equality_clauses as u64,
            sat_vars: self.sat_vars as u64,
            sat_clauses: self.sat_clauses as u64,
            decisions: self.sat.decisions.saturating_sub(prev.sat.decisions),
            propagations: self.sat.propagations.saturating_sub(prev.sat.propagations),
            conflicts: self.sat.conflicts.saturating_sub(prev.sat.conflicts),
            restarts: self.sat.restarts.saturating_sub(prev.sat.restarts),
            deleted_clauses: self
                .sat
                .deleted_clauses
                .saturating_sub(prev.sat.deleted_clauses),
            intern_hits,
            intern_misses,
            atom_cache_hits: self.atom_hits.saturating_sub(prev.atom_hits),
            atom_cache_misses: self.atom_misses.saturating_sub(prev.atom_misses),
        };
        counter_add("epr.queries", 1);
        counter_add("epr.instances", report.instances);
        counter_add("sat.decisions", report.decisions);
        counter_add("sat.propagations", report.propagations);
        counter_add("sat.conflicts", report.conflicts);
        counter_add("sat.restarts", report.restarts);
        counter_add("sat.deleted_clauses", report.deleted_clauses);
        counter_add(
            "sat.lbd_reductions",
            self.sat
                .lbd_reductions
                .saturating_sub(prev.sat.lbd_reductions),
        );
        counter_add(
            "sat.minimized_lits",
            self.sat
                .minimized_lits
                .saturating_sub(prev.sat.minimized_lits),
        );
        counter_add(
            "sat.portfolio_winner",
            self.sat
                .portfolio_winner
                .saturating_sub(prev.sat.portfolio_winner),
        );
        counter_add("cache.atom_hits", report.atom_cache_hits);
        counter_add("cache.atom_misses", report.atom_cache_misses);
        report
    }
}

/// An EPR satisfiability query: labeled `∃*∀*` assertions over a signature.
///
/// # Examples
///
/// ```
/// use ivy_fol::{parse_formula, Signature};
/// use ivy_epr::EprCheck;
///
/// let mut sig = Signature::new();
/// sig.add_sort("s")?;
/// sig.add_relation("r", ["s", "s"])?;
/// let mut q = EprCheck::new(&sig)?;
/// q.assert_labeled("total", &parse_formula("forall X:s, Y:s. r(X, Y) | r(Y, X)")?)?;
/// q.assert_labeled("gap", &parse_formula("exists X:s, Y:s. ~r(X, Y) & ~r(Y, X)")?)?;
/// assert!(!q.check()?.is_sat());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct EprCheck {
    sig: Signature,
    mode: InstantiationMode,
    assertions: Vec<(String, FormulaId)>,
    instance_limit: u64,
    equality_mode: EqualityMode,
    lazy_round_limit: Option<usize>,
    budget: Budget,
    solver_config: SolverConfig,
    stats: GroundStats,
    report: QueryReport,
}

impl EprCheck {
    /// Creates a query over `sig` in [`InstantiationMode::Full`].
    ///
    /// # Errors
    ///
    /// Returns [`EprError::Sig`] if the signature's functions are not
    /// stratified — the decidability precondition of Section 3.3. The error
    /// names the offending sort cycle and the function edges inducing it;
    /// [`EprCheck::with_mode`] with [`InstantiationMode::Bounded`] admits
    /// such signatures.
    pub fn new(sig: &Signature) -> Result<EprCheck, EprError> {
        EprCheck::with_mode(sig, InstantiationMode::Full)
    }

    /// Creates a query over `sig` with an explicit [`InstantiationMode`].
    ///
    /// # Errors
    ///
    /// In [`InstantiationMode::Full`], returns [`EprError::Sig`] for
    /// unstratified signatures. [`InstantiationMode::Bounded`] accepts any
    /// signature — fragment membership becomes a per-query analysis that
    /// decides how much the bound ends up mattering, not a constructor
    /// error.
    pub fn with_mode(sig: &Signature, mode: InstantiationMode) -> Result<EprCheck, EprError> {
        if !mode.is_bounded() {
            sig.stratification()?;
        }
        Ok(EprCheck {
            sig: sig.clone(),
            mode,
            assertions: Vec::new(),
            instance_limit: DEFAULT_INSTANCE_LIMIT,
            equality_mode: EqualityMode::default(),
            lazy_round_limit: None,
            budget: Budget::UNLIMITED,
            solver_config: SolverConfig::default(),
            stats: GroundStats::default(),
            report: QueryReport::default(),
        })
    }

    /// The instantiation mode this query runs under.
    pub fn mode(&self) -> InstantiationMode {
        self.mode
    }

    /// Sets the SAT solver configuration (feature toggles, portfolio
    /// fan-out) applied to the solver of every subsequent [`EprCheck::check`].
    pub fn set_solver_config(&mut self, config: SolverConfig) {
        self.solver_config = config;
    }

    /// Bounds the lazy equality repair loop; exceeding it yields
    /// [`EprError::RepairLimit`]. `None` (the default) never gives up.
    pub fn set_lazy_round_limit(&mut self, limit: Option<usize>) {
        self.lazy_round_limit = limit;
    }

    /// Applies a resource [`Budget`]. A deadline or conflict cap that trips
    /// mid-query makes [`EprCheck::check`] return
    /// [`EprOutcome::Unknown`] (with partial statistics) instead of
    /// running unbounded; `max_instances` tightens the instantiation limit.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Selects eager or lazy equality axiom generation (default: lazy).
    pub fn set_equality_mode(&mut self, mode: EqualityMode) {
        self.equality_mode = mode;
    }

    /// Caps the number of universal instantiations grounding may perform.
    pub fn set_instance_limit(&mut self, limit: u64) {
        self.instance_limit = limit;
    }

    /// Adds a labeled assertion. The formula must be closed and well-sorted;
    /// its quantifier structure is validated at [`EprCheck::check`] time
    /// (after Skolemization).
    ///
    /// # Errors
    ///
    /// Returns [`EprError::Sort`] for ill-sorted formulas.
    pub fn assert_labeled(
        &mut self,
        label: impl Into<String>,
        f: &Formula,
    ) -> Result<(), EprError> {
        f.well_sorted(&self.sig, &BTreeMap::new())?;
        let id = ivy_fol::intern::intern(f);
        self.assertions.push((label.into(), id));
        Ok(())
    }

    /// Adds a labeled assertion that is already interned, avoiding a tree
    /// materialization for callers working in id space (the sort check
    /// still resolves once — the only cold walk an assertion pays).
    ///
    /// # Errors
    ///
    /// Returns [`EprError::Sort`] for ill-sorted formulas.
    pub fn assert_id(&mut self, label: impl Into<String>, f: FormulaId) -> Result<(), EprError> {
        let tree = ivy_fol::intern::resolve(f);
        tree.well_sorted(&self.sig, &BTreeMap::new())?;
        self.assertions.push((label.into(), f));
        Ok(())
    }

    /// Grounding and solving statistics of the last `check` call.
    pub fn stats(&self) -> GroundStats {
        self.stats
    }

    /// Telemetry report of the last `check` call (same numbers as
    /// [`EprCheck::stats`], in the machine-readable form emitted by
    /// `--profile`). Partial stats are recorded even when the outcome is
    /// [`EprOutcome::Unknown`].
    pub fn report(&self) -> &QueryReport {
        &self.report
    }

    /// Runs only the grounding pipeline (split, Skolemize, instantiate,
    /// Tseitin-encode) without invoking the SAT solver. Useful for measuring
    /// grounding cost in isolation; the updated [`GroundStats`] are
    /// returned and also available via [`EprCheck::stats`].
    ///
    /// # Errors
    ///
    /// Same as [`EprCheck::check`], minus solver-stage errors.
    pub fn ground_only(&mut self) -> Result<GroundStats, EprError> {
        let _ = self.grounded()?;
        Ok(self.stats)
    }

    /// Decides satisfiability of the conjunction of all assertions.
    ///
    /// # Errors
    ///
    /// [`EprError::Skolem`] when an assertion leaves `∃*∀*`;
    /// [`EprError::TooManyInstances`] when grounding exceeds the limit.
    pub fn check(&mut self) -> Result<EprOutcome, EprError> {
        let started = std::time::Instant::now();
        // An already-expired deadline degrades before grounding even
        // starts: grounding a large query can itself blow the budget.
        if self.budget.expired() {
            let stop = Some(StopReason::DeadlineExceeded);
            self.report = self.stats.report_delta(
                &GroundStats::default(),
                "unknown",
                stop,
                started.elapsed().as_nanos(),
            );
            return Ok(EprOutcome::Unknown(StopReason::DeadlineExceeded));
        }
        let (work_sig, mut enc, guards) = self.grounded()?;
        let assumptions: Vec<Lit> = guards.iter().map(|(g, _)| *g).collect();
        enc.solver_mut().set_config(self.solver_config);
        enc.solver_mut().set_deadline(self.budget.deadline);
        let sat_span = Span::enter("sat");
        let result = match self.equality_mode {
            EqualityMode::Eager => {
                self.stats.equality_clauses = enc.finalize_equality();
                let max_conflicts = self.budget.max_conflicts.unwrap_or(u64::MAX);
                match enc.solver_mut().solve_budgeted(&assumptions, max_conflicts) {
                    Some(r) => Ok(r),
                    None => Err(match enc.solver().last_interrupt() {
                        Some(ivy_sat::Interrupt::Deadline) => StopReason::DeadlineExceeded,
                        _ => StopReason::ConflictBudget,
                    }),
                }
            }
            EqualityMode::Lazy => {
                let (result, rounds) = enc.solve_lazy_with(
                    &assumptions,
                    self.lazy_round_limit,
                    self.budget.max_conflicts,
                );
                self.stats.equality_rounds = rounds;
                match result {
                    LazyResult::Sat => Ok(SolveResult::Sat),
                    LazyResult::Unsat => Ok(SolveResult::Unsat),
                    LazyResult::Deadline => Err(StopReason::DeadlineExceeded),
                    LazyResult::Conflicts => Err(StopReason::ConflictBudget),
                    LazyResult::GaveUp => {
                        drop(sat_span);
                        self.finish_stats(&enc, started, "gave_up", Some(StopReason::RepairLimit));
                        return Err(EprError::RepairLimit { rounds });
                    }
                }
            }
        };
        drop(sat_span);
        let outcome = match result {
            Err(reason) => EprOutcome::Unknown(reason),
            // A bounded SAT is only a verdict when nothing was cut: if the
            // universe was truncated or an instantiation skipped, the model
            // satisfies a strict subset of the full ground problem and may
            // not extend — degrade to Unknown. (UNSAT always stands: the
            // bounded clauses are a subset of the full instantiation.)
            // `extract_structure` also relies on the closure being complete.
            Ok(SolveResult::Sat) if enc.table().truncated() || enc.skipped_instances() > 0 => {
                EprOutcome::Unknown(StopReason::BoundReached)
            }
            Ok(SolveResult::Sat) => {
                let structure = extract_structure(&enc, &work_sig);
                EprOutcome::Sat(Box::new(Model { structure }))
            }
            Ok(SolveResult::Unsat) => {
                let core: Vec<String> = enc
                    .solver()
                    .unsat_core()
                    .iter()
                    .filter_map(|l| {
                        guards
                            .iter()
                            .find(|(g, _)| g == l)
                            .map(|(_, label)| label.clone())
                    })
                    .collect();
                EprOutcome::Unsat(core)
            }
        };
        let stop = match &outcome {
            EprOutcome::Unknown(r) => Some(*r),
            _ => None,
        };
        self.finish_stats(&enc, started, outcome.tag(), stop);
        Ok(outcome)
    }

    /// Refreshes `stats` and `report` from the encoder through the shared
    /// builder (each `check` uses a fresh encoder, so the delta baseline is
    /// empty). Equality fields filled earlier in `check` are preserved.
    fn finish_stats(
        &mut self,
        enc: &Encoder,
        started: std::time::Instant,
        outcome: &str,
        stop: Option<StopReason>,
    ) {
        let eq_clauses = self.stats.equality_clauses;
        let rounds = self.stats.equality_rounds;
        self.stats = GroundStats::collect(enc, self.stats.instances, eq_clauses, rounds);
        self.report = self.stats.report_delta(
            &GroundStats::default(),
            outcome,
            stop,
            started.elapsed().as_nanos(),
        );
    }

    /// The grounding prefix shared by [`EprCheck::check`] and
    /// [`EprCheck::ground_only`]: split, Skolemize, instantiate and encode
    /// every assertion into a fresh [`Encoder`], one assumption guard per
    /// assertion.
    #[allow(clippy::type_complexity)]
    fn grounded(&mut self) -> Result<(Signature, Encoder, Vec<(Lit, String)>), EprError> {
        let ground_span = Span::enter("ground");
        let mut work_sig = self.sig.clone();
        // Split, then Skolemize every assertion, extending the working
        // signature. Splitting (relational Tseitin with fresh nullary guard
        // relations) keeps disjunctions of universally-defined transition
        // paths from merging all their quantifiers into one huge block —
        // without it a BMC step over p paths with v variables each would
        // ground over (p·v) variables at once.
        let mut guard_counter = 0usize;
        let mut ground_jobs: Vec<(String, Vec<GroundJob>)> = Vec::new();
        Interner::with(|it| -> Result<(), EprError> {
            for (label, f) in &self.assertions {
                let f = it.eliminate_ite(*f);
                let n = it.nnf(f);
                let mut pieces = Vec::new();
                split_for_grounding(
                    it,
                    n,
                    Vec::new(),
                    &mut work_sig,
                    &mut guard_counter,
                    &mut pieces,
                );
                let mut jobs = Vec::new();
                for piece in pieces {
                    // Bounded mode tolerates ∀∃ nesting: existentials under
                    // universals Skolemize to genuine functions, whose
                    // applications the bounded universe only unrolls up to
                    // the depth bound.
                    let sk = match self.mode {
                        InstantiationMode::Full => it.skolemize(piece, &mut work_sig)?,
                        InstantiationMode::Bounded(_) => {
                            it.skolemize_bounded(piece, &mut work_sig)?
                        }
                    };
                    let bindings: Vec<Binding> = sk
                        .universal
                        .prefix
                        .iter()
                        .flat_map(|b| match b {
                            Block::Forall(bs) => bs.clone(),
                            Block::Exists(_) => unreachable!("skolemize leaves only universals"),
                        })
                        .collect();
                    // Miniscope: instantiate each top-level conjunct only
                    // over the variables it actually uses (free-var sets are
                    // cached on the interned nodes).
                    for conjunct in it.conjuncts(sk.universal.matrix) {
                        let fv = it.free_vars(conjunct);
                        let needed: Vec<Binding> = bindings
                            .iter()
                            .filter(|b| fv.contains(&b.var))
                            .cloned()
                            .collect();
                        let template = Template::compile(it, conjunct, &needed);
                        jobs.push(GroundJob {
                            bindings: needed,
                            template,
                        });
                    }
                }
                ground_jobs.push((label.clone(), jobs));
            }
            Ok(())
        })?;
        ensure_inhabited(&mut work_sig);
        let table = match self.mode {
            InstantiationMode::Full => TermTable::build(&work_sig),
            InstantiationMode::Bounded(depth) => TermTable::build_bounded(&work_sig, depth),
        };
        // Estimate and enforce the instantiation budget.
        let mut estimated: u64 = 0;
        for (_, jobs) in &ground_jobs {
            for job in jobs {
                let mut count: u64 = 1;
                for b in &job.bindings {
                    count = count.saturating_mul(table.of_sort(&b.sort).len() as u64);
                }
                estimated = estimated.saturating_add(count);
            }
        }
        let limit = self
            .instance_limit
            .min(self.budget.max_instances.unwrap_or(u64::MAX));
        if estimated > limit {
            return Err(EprError::TooManyInstances { estimated, limit });
        }
        self.stats = GroundStats {
            universe: table.len(),
            instances: estimated,
            ..GroundStats::default()
        };
        drop(ground_span);
        let encode_span = Span::enter("encode");
        let mut enc = Encoder::new(table);
        enc.set_bound(self.mode.depth());
        // The config must be live *during* encoding (`flat_cnf` gates the
        // clausal fast path), not just at solve time.
        enc.solver_mut().set_config(self.solver_config);
        // One assumption guard per assertion (for UNSAT cores).
        let mut guards: Vec<(Lit, String)> = Vec::new();
        for (label, jobs) in &ground_jobs {
            let guard = enc.fresh_var().pos();
            guards.push((guard, label.clone()));
            for job in jobs {
                instantiate(&mut enc, guard, job);
            }
        }
        drop(encode_span);
        Ok((work_sig, enc, guards))
    }
}

/// Splits an NNF sentence into equisatisfiable pieces whose quantifier
/// blocks stay small (Plaisted–Greenbaum-style definitional splitting):
///
/// * conjunctions split into separate pieces;
/// * universal quantifiers distribute over the conjuncts of their body;
/// * inside a disjunction, each non-literal disjunct is replaced by a fresh
///   nullary *guard* relation `g`, and `¬g ∨ disjunct` is split recursively.
///
/// `guard` carries the accumulated guard literals to prefix onto every
/// emitted piece. Sound for positively asserted sentences.
pub(crate) fn split_for_grounding(
    it: &mut Interner,
    f: FormulaId,
    guard: Vec<FormulaId>,
    sig: &mut Signature,
    counter: &mut usize,
    out: &mut Vec<FormulaId>,
) {
    let node = it.node(f).clone();
    match node {
        FormulaNode::And(fs) => {
            for g in fs {
                split_for_grounding(it, g, guard.clone(), sig, counter, out);
            }
        }
        FormulaNode::Forall(bs, body) => {
            // ∀x.(A ∧ B) = (∀x.A) ∧ (∀x.B); restrict bindings per conjunct.
            if let FormulaNode::And(cs) = it.node(body).clone() {
                for c in cs {
                    let fv = it.free_vars(c);
                    let needed: Vec<Binding> =
                        bs.iter().filter(|b| fv.contains(&b.var)).cloned().collect();
                    let piece = it.forall(needed, c);
                    split_for_grounding(it, piece, guard.clone(), sig, counter, out);
                }
            } else {
                emit_piece(it, f, guard, out);
            }
        }
        FormulaNode::Or(fs) => {
            // Estimate whether splitting pays off: count disjuncts that are
            // conjunctions or quantified formulas.
            let complex = |it: &Interner, g: FormulaId| {
                matches!(
                    it.node(g),
                    FormulaNode::And(_)
                        | FormulaNode::Forall(..)
                        | FormulaNode::Exists(..)
                        | FormulaNode::Or(_)
                )
            };
            if fs.iter().filter(|&&g| complex(it, g)).count() <= 1 {
                // At most one structured disjunct: keep intact (prenexing
                // handles a single block fine).
                emit_piece(it, f, guard, out);
                return;
            }
            let mut disjuncts = Vec::with_capacity(fs.len());
            for g in fs {
                if complex(it, g) {
                    let name = loop {
                        let candidate = Sym::new(format!("split__{counter}"));
                        *counter += 1;
                        if sig.relation(&candidate).is_none() && sig.function(&candidate).is_none()
                        {
                            break candidate;
                        }
                    };
                    sig.add_relation(name, Vec::<ivy_fol::Sort>::new())
                        .expect("fresh guard name");
                    let guard_atom = it.rel(name, Vec::new());
                    disjuncts.push(guard_atom);
                    let mut inner_guard = guard.clone();
                    inner_guard.push(it.not(guard_atom));
                    split_for_grounding(it, g, inner_guard, sig, counter, out);
                } else {
                    disjuncts.push(g);
                }
            }
            let piece = it.or(disjuncts);
            emit_piece(it, piece, guard, out);
        }
        _ => emit_piece(it, f, guard, out),
    }
}

fn emit_piece(it: &mut Interner, f: FormulaId, guard: Vec<FormulaId>, out: &mut Vec<FormulaId>) {
    if guard.is_empty() {
        out.push(f);
    } else {
        let mut parts = guard;
        parts.push(f);
        out.push(it.or(parts));
    }
}

/// Enumerates all ground instantiations of the job's bindings and asserts
/// `guard -> matrix[env]` for each (by template replay — no interner access
/// in this loop). With `min_term`, only tuples mentioning at least one term
/// id `>= min_term` are instantiated — incremental sessions use this to
/// cover exactly the universe delta after an extension without repeating
/// instantiations that already exist.
pub(crate) fn instantiate_delta(enc: &mut Encoder, guard: Lit, job: &GroundJob, min_term: usize) {
    // Copy each binding's candidate list once per job, not once per visited
    // tuple prefix — the recursion below only reads them.
    let domains: Vec<Vec<usize>> = job
        .bindings
        .iter()
        .map(|b| enc.table().of_sort(&b.sort).to_vec())
        .collect();
    fn go(
        enc: &mut Encoder,
        guard: Lit,
        job: &GroundJob,
        domains: &[Vec<usize>],
        env: &mut Vec<usize>,
        min_term: usize,
        any_new: bool,
    ) {
        if env.len() == job.bindings.len() {
            if any_new || min_term == 0 {
                enc.assert_template(&job.template, env, guard);
            }
            return;
        }
        for &t in &domains[env.len()] {
            env.push(t);
            go(
                enc,
                guard,
                job,
                domains,
                env,
                min_term,
                any_new || t >= min_term,
            );
            env.pop();
        }
    }
    go(enc, guard, job, &domains, &mut Vec::new(), min_term, false);
}

/// Enumerates all ground instantiations of the job and asserts
/// `guard -> matrix[env]` for each.
fn instantiate(enc: &mut Encoder, guard: Lit, job: &GroundJob) {
    instantiate_delta(enc, guard, job, 0);
}

/// Builds a finite first-order structure from the SAT model by quotienting
/// the ground-term universe by the true equalities.
pub(crate) fn extract_structure(enc: &Encoder, work_sig: &Signature) -> Structure {
    let sig = Arc::new(work_sig.clone());
    let mut structure = Structure::new(sig);
    let parts = enc.model_parts();
    let mut classes = parts.equality_classes();
    // Map class representative -> element, per sort, in ascending rep order
    // for determinism.
    let mut elem_of: BTreeMap<usize, Elem> = BTreeMap::new();
    for sort in work_sig.sorts() {
        let mut reps: Vec<usize> = enc
            .table()
            .of_sort(sort)
            .iter()
            .map(|&t| classes.find(t))
            .collect();
        reps.sort_unstable();
        reps.dedup();
        for rep in reps {
            let e = structure.add_element(*sort);
            elem_of.insert(rep, e);
        }
    }
    // Relations: positive atoms only (missing tuples are false).
    for (sym, args, value) in parts.atoms() {
        if value {
            let tuple: Vec<Elem> = args
                .iter()
                .map(|&a| elem_of[&classes.find(a)].clone())
                .collect();
            structure.set_rel(*sym, tuple, true);
        }
    }
    // Functions: total by construction of the closed universe. For every
    // combination of argument *classes*, apply the function to the class
    // representatives (which are ground terms) and read off the result class.
    let sorts_elems: BTreeMap<Sort, Vec<usize>> = work_sig
        .sorts()
        .iter()
        .map(|sort| {
            let mut reps: Vec<usize> = enc
                .table()
                .of_sort(sort)
                .iter()
                .map(|&t| classes.find(t))
                .collect();
            reps.sort_unstable();
            reps.dedup();
            (*sort, reps)
        })
        .collect();
    for (name, decl) in work_sig.functions() {
        let mut tuples: Vec<Vec<usize>> = vec![Vec::new()];
        for s in &decl.args {
            let mut next = Vec::new();
            for prefix in &tuples {
                for &rep in &sorts_elems[s] {
                    let mut t = prefix.clone();
                    t.push(rep);
                    next.push(t);
                }
            }
            tuples = next;
        }
        for reps in tuples {
            let result_term = enc
                .table()
                .get(name, &reps)
                .expect("universe is closed under functions");
            let args: Vec<Elem> = reps
                .iter()
                .map(|r| elem_of[&classes.find(*r)].clone())
                .collect();
            let result = elem_of[&classes.find(result_term)].clone();
            structure.set_fun(*name, args, result);
        }
    }
    structure
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_fol::parse_formula;

    fn order_sig() -> Signature {
        let mut sig = Signature::new();
        sig.add_sort("id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        sig
    }

    const TOTAL_ORDER: &str = "forall X:id. le(X, X)";
    const ANTISYM: &str = "forall X:id, Y:id. le(X, Y) & le(Y, X) -> X = Y";
    const TRANS: &str = "forall X:id, Y:id, Z:id. le(X, Y) & le(Y, Z) -> le(X, Z)";
    const TOTAL: &str = "forall X:id, Y:id. le(X, Y) | le(Y, X)";

    #[test]
    fn total_order_axioms_satisfiable() {
        let sig = order_sig();
        let mut q = EprCheck::new(&sig).unwrap();
        for (i, src) in [TOTAL_ORDER, ANTISYM, TRANS, TOTAL].iter().enumerate() {
            q.assert_labeled(format!("ax{i}"), &parse_formula(src).unwrap())
                .unwrap();
        }
        q.assert_labeled(
            "three",
            &parse_formula("exists X:id, Y:id, Z:id. X ~= Y & Y ~= Z & X ~= Z").unwrap(),
        )
        .unwrap();
        match q.check().unwrap() {
            EprOutcome::Sat(model) => {
                let s = &model.structure;
                assert!(s.domain_size(&Sort::new("id")) >= 3);
                // The model really satisfies all assertions.
                for src in [TOTAL_ORDER, ANTISYM, TRANS, TOTAL] {
                    assert!(
                        s.eval_closed(&parse_formula(src).unwrap()).unwrap(),
                        "{src}"
                    );
                }
            }
            EprOutcome::Unsat(core) => panic!("unexpectedly unsat: {core:?}"),
            EprOutcome::Unknown(r) => panic!("unexpectedly unknown: {r}"),
        }
    }

    #[test]
    fn contradiction_detected_with_core() {
        let sig = order_sig();
        let mut q = EprCheck::new(&sig).unwrap();
        q.assert_labeled("refl", &parse_formula(TOTAL_ORDER).unwrap())
            .unwrap();
        q.assert_labeled("irrefl", &parse_formula("exists X:id. ~le(X, X)").unwrap())
            .unwrap();
        q.assert_labeled("total", &parse_formula(TOTAL).unwrap())
            .unwrap();
        match q.check().unwrap() {
            EprOutcome::Unsat(core) => {
                assert!(core.contains(&"refl".to_string()));
                assert!(core.contains(&"irrefl".to_string()));
                assert!(!core.contains(&"total".to_string()), "core: {core:?}");
            }
            EprOutcome::Sat(_) => panic!("expected unsat"),
            EprOutcome::Unknown(r) => panic!("unexpectedly unknown: {r}"),
        }
    }

    #[test]
    fn finite_model_property_bounds_domain() {
        // exists X,Y. X ~= Y with nothing else: minimal model has 2 elements;
        // our construction never exceeds the number of Skolem constants.
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        let mut q = EprCheck::new(&sig).unwrap();
        q.assert_labeled("pair", &parse_formula("exists X:s, Y:s. X ~= Y").unwrap())
            .unwrap();
        match q.check().unwrap() {
            EprOutcome::Sat(model) => {
                assert_eq!(model.structure.domain_size(&Sort::new("s")), 2);
            }
            EprOutcome::Unsat(_) => panic!("satisfiable"),
            EprOutcome::Unknown(r) => panic!("unexpectedly unknown: {r}"),
        }
    }

    #[test]
    fn skolems_can_merge_when_equality_forces() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_relation("r", ["s"]).unwrap();
        let mut q = EprCheck::new(&sig).unwrap();
        // At most one element, and two witnesses: they must merge.
        q.assert_labeled(
            "at_most_one",
            &parse_formula("forall X:s, Y:s. X = Y").unwrap(),
        )
        .unwrap();
        q.assert_labeled(
            "two_names",
            &parse_formula("exists X:s, Y:s. r(X) & r(Y)").unwrap(),
        )
        .unwrap();
        match q.check().unwrap() {
            EprOutcome::Sat(model) => {
                assert_eq!(model.structure.domain_size(&Sort::new("s")), 1);
            }
            EprOutcome::Unsat(_) => panic!("satisfiable"),
            EprOutcome::Unknown(r) => panic!("unexpectedly unknown: {r}"),
        }
    }

    #[test]
    fn ae_formula_rejected() {
        let sig = order_sig();
        let mut q = EprCheck::new(&sig).unwrap();
        q.assert_labeled(
            "ae",
            &parse_formula("forall X:id. exists Y:id. le(X, Y)").unwrap(),
        )
        .unwrap();
        assert!(matches!(q.check(), Err(EprError::Skolem(_))));
    }

    #[test]
    fn unstratified_signature_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        assert!(matches!(EprCheck::new(&sig), Err(EprError::Sig(_))));
    }

    #[test]
    fn bounded_mode_admits_unstratified_signature() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        // Full mode refuses at construction; bounded mode proceeds, and an
        // UNSAT answer is a verdict even though the universe is truncated.
        assert!(EprCheck::new(&sig).is_err());
        let mut q = EprCheck::with_mode(&sig, InstantiationMode::Bounded(2)).unwrap();
        q.assert_labeled("absurd", &parse_formula("exists X:s. X ~= X").unwrap())
            .unwrap();
        match q.check().unwrap() {
            EprOutcome::Unsat(core) => assert_eq!(core, vec!["absurd".to_string()]),
            other => panic!("expected unsat, got {}", other.tag()),
        }
    }

    #[test]
    fn bounded_mode_degrades_sat_under_live_bound() {
        let mut sig = Signature::new();
        sig.add_sort("s").unwrap();
        sig.add_function("next", ["s"], "s").unwrap();
        // `next` makes the closure infinite, so any bound truncates; a SAT
        // answer is then only about a strict subset of the ground problem.
        let mut q = EprCheck::with_mode(&sig, InstantiationMode::Bounded(2)).unwrap();
        q.assert_labeled("trivial", &parse_formula("exists X:s. X = X").unwrap())
            .unwrap();
        assert!(matches!(
            q.check().unwrap(),
            EprOutcome::Unknown(StopReason::BoundReached)
        ));
    }

    #[test]
    fn bounded_mode_keeps_genuine_sat_when_closure_fits() {
        // A stratified signature whose closure fits under the bound: nothing
        // is cut, so SAT stays a verdict with a real model.
        let sig = order_sig();
        let mut q = EprCheck::with_mode(&sig, InstantiationMode::Bounded(4)).unwrap();
        q.assert_labeled(
            "pair",
            &parse_formula("exists X:id, Y:id. le(X, Y) & X ~= Y").unwrap(),
        )
        .unwrap();
        match q.check().unwrap() {
            EprOutcome::Sat(model) => {
                assert!(model.structure.domain_size(&Sort::new("id")) >= 2);
            }
            other => panic!("expected sat, got {}", other.tag()),
        }
    }

    #[test]
    fn bounded_mode_proves_ae_contradiction() {
        // ∀∃ assertion Skolemizes to a function sk : id -> id; together with
        // an ∃∀ witness of an le-maximal element it is UNSAT, and depth 1
        // already holds the witnessing term sk(c).
        let sig = order_sig();
        let mut full = EprCheck::new(&sig).unwrap();
        full.assert_labeled(
            "succ",
            &parse_formula("forall X:id. exists Y:id. le(X, Y) & X ~= Y").unwrap(),
        )
        .unwrap();
        assert!(matches!(full.check(), Err(EprError::Skolem(_))));

        let mut q = EprCheck::with_mode(&sig, InstantiationMode::Bounded(1)).unwrap();
        q.assert_labeled(
            "succ",
            &parse_formula("forall X:id. exists Y:id. le(X, Y) & X ~= Y").unwrap(),
        )
        .unwrap();
        q.assert_labeled(
            "max",
            &parse_formula("exists X:id. forall Y:id. le(X, Y) -> X = Y").unwrap(),
        )
        .unwrap();
        match q.check().unwrap() {
            EprOutcome::Unsat(core) => {
                assert!(core.contains(&"succ".to_string()), "core: {core:?}");
                assert!(core.contains(&"max".to_string()), "core: {core:?}");
            }
            other => panic!("expected unsat, got {}", other.tag()),
        }
    }

    #[test]
    fn stratified_functions_in_models() {
        let mut sig = Signature::new();
        sig.add_sort("node").unwrap();
        sig.add_sort("id").unwrap();
        sig.add_function("idf", ["node"], "id").unwrap();
        sig.add_relation("le", ["id", "id"]).unwrap();
        let mut q = EprCheck::new(&sig).unwrap();
        // Injectivity + two nodes.
        q.assert_labeled(
            "unique_ids",
            &parse_formula("forall N1:node, N2:node. N1 ~= N2 -> idf(N1) ~= idf(N2)").unwrap(),
        )
        .unwrap();
        q.assert_labeled(
            "two",
            &parse_formula("exists N1:node, N2:node. N1 ~= N2").unwrap(),
        )
        .unwrap();
        match q.check().unwrap() {
            EprOutcome::Sat(model) => {
                let s = &model.structure;
                assert!(s.domain_size(&Sort::new("id")) >= 2, "ids must differ");
                assert!(s.totality_gap().is_none(), "functions are total");
            }
            EprOutcome::Unsat(_) => panic!("satisfiable"),
            EprOutcome::Unknown(r) => panic!("unexpectedly unknown: {r}"),
        }
    }

    #[test]
    fn instance_limit_enforced() {
        let sig = order_sig();
        let mut q = EprCheck::new(&sig).unwrap();
        q.set_instance_limit(2);
        q.assert_labeled("trans", &parse_formula(TRANS).unwrap())
            .unwrap();
        q.assert_labeled(
            "some",
            &parse_formula("exists X:id, Y:id. le(X, Y)").unwrap(),
        )
        .unwrap();
        assert!(matches!(q.check(), Err(EprError::TooManyInstances { .. })));
    }
}
