//! A decision procedure for EPR (Bernays–Schönfinkel–Ramsey) extended with
//! stratified function symbols — the logic underlying every check in the Ivy
//! paper (Section 3.3, Theorem 3.3).
//!
//! Pipeline: `ite`-elimination → Skolemization (constants only, since input
//! is `∃*∀*`) → finite ground-term universe (terminates by stratification) →
//! universal instantiation → Tseitin CNF with relevant-pairs equality
//! axioms → CDCL SAT. Satisfiable queries yield a *finite first-order
//! structure* (the finite-model property); unsatisfiable queries yield an
//! UNSAT core over assertion labels, which powers Ivy's
//! *BMC + Auto Generalize*.
//!
//! Fragment membership is a *dial*, not a wall: [`InstantiationMode::Bounded`]
//! admits unstratified signatures and `∀∃` alternations (Skolemized to real
//! functions) by building ground terms only up to a nesting depth. The
//! bounded clause set is a subset of the full instantiation, so UNSAT stays
//! a verdict; SAT while the bound was load-bearing degrades to
//! [`EprOutcome::Unknown`] with [`StopReason::BoundReached`].
//!
//! # Example
//!
//! ```
//! use ivy_fol::{parse_formula, Signature};
//! use ivy_epr::{EprCheck, EprOutcome};
//!
//! let mut sig = Signature::new();
//! sig.add_sort("node")?;
//! sig.add_relation("leader", ["node"])?;
//! let mut q = EprCheck::new(&sig)?;
//! q.assert_labeled("two_leaders", &parse_formula(
//!     "exists X:node, Y:node. X ~= Y & leader(X) & leader(Y)")?)?;
//! let EprOutcome::Sat(model) = q.check()? else { panic!("satisfiable") };
//! assert!(model.structure.domain_size(&"node".into()) >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod encode;
pub mod ground;
pub mod session;

pub use check::{
    EprCheck, EprError, EprOutcome, GroundStats, InstantiationMode, Model, DEFAULT_INSTANCE_LIMIT,
};
pub use encode::{Encoder, EqualityMode, LazyResult};
pub use ground::{ensure_inhabited, GroundTerm, TermId, TermTable};
pub use ivy_sat::SolverConfig;
pub use ivy_telemetry::{Budget, QueryReport, StopReason};
pub use session::{frame_fingerprint, frame_fingerprint_with_mode, EprSession, GroupId};
