//! Property tests for the EPR decision procedure: produced models must
//! satisfy every assertion (checked by independent evaluation), UNSAT cores
//! must be genuinely unsatisfiable, and the lazy and eager equality modes
//! must agree.
//!
//! Queries are subsets of a fixed sentence pool, enumerated by a
//! deterministic walk over bitmasks so runs are reproducible without any
//! external test-data crate.

use ivy_epr::{EprCheck, EprOutcome, EqualityMode};
use ivy_fol::{parse_formula, Formula, Signature};

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_sort("t").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_relation("q", ["s", "t"]).unwrap();
    sig.add_function("f", ["s"], "t").unwrap();
    sig.add_constant("a", "s").unwrap();
    sig.add_constant("b", "s").unwrap();
    sig
}

/// A pool of ∃*∀* sentences over the signature; subsets form the queries.
fn pool() -> Vec<Formula> {
    [
        "r(a)",
        "~r(b)",
        "a = b",
        "a ~= b",
        "forall X:s. r(X)",
        "forall X:s. ~r(X)",
        "exists X:s. r(X) & X ~= a",
        "forall X:s, Y:s. X = Y",
        "exists X:s, Y:s. X ~= Y",
        "forall X:s. q(X, f(X))",
        "forall X:s, Y:t. ~q(X, Y)",
        "exists X:s. q(X, f(a))",
        "f(a) = f(b)",
        "f(a) ~= f(b)",
        "forall X:s, Y:s. f(X) = f(Y) -> X = Y",
        "forall X:s. r(X) -> q(X, f(X))",
    ]
    .iter()
    .map(|s| parse_formula(s).unwrap())
    .collect()
}

fn run(mode: EqualityMode, chosen: &[Formula]) -> EprOutcome {
    let mut q = EprCheck::new(&signature()).unwrap();
    q.set_equality_mode(mode);
    for (i, f) in chosen.iter().enumerate() {
        q.assert_labeled(format!("a{i}"), f).unwrap();
    }
    q.check().unwrap()
}

#[test]
fn models_satisfy_assertions_and_modes_agree() {
    let pool = pool();
    // A deterministic spread of 192 masks over the 2^16 subset space
    // (multiplicative stride by an odd constant hits distinct masks).
    for case in 0..192u32 {
        let mask = case.wrapping_mul(21139) % 65536;
        let chosen: Vec<Formula> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| f.clone())
            .collect();
        let lazy = run(EqualityMode::Lazy, &chosen);
        let eager = run(EqualityMode::Eager, &chosen);
        assert_eq!(
            lazy.is_sat(),
            eager.is_sat(),
            "equality modes disagree on mask {mask}"
        );
        match lazy {
            EprOutcome::Sat(model) => {
                for f in &chosen {
                    assert!(
                        model.structure.eval_closed(f).unwrap(),
                        "model violates `{}`; structure: {}",
                        f,
                        model.structure
                    );
                }
            }
            EprOutcome::Unsat(core) => {
                // The core must itself be unsatisfiable.
                let core_formulas: Vec<Formula> = core
                    .iter()
                    .filter_map(|label| {
                        label
                            .strip_prefix('a')
                            .and_then(|n| n.parse::<usize>().ok())
                            .map(|n| chosen[n].clone())
                    })
                    .collect();
                assert!(!core_formulas.is_empty() || chosen.is_empty());
                let again = run(EqualityMode::Lazy, &core_formulas);
                assert!(!again.is_sat(), "core is satisfiable: {core:?}");
            }
            EprOutcome::Unknown(r) => {
                panic!("unbudgeted query returned unknown ({r}) on mask {mask}")
            }
        }
    }
}
