//! Differential tests for incremental sessions: a sequence of queries run
//! through one [`EprSession`] (shared frame, assumption-guarded violations,
//! persistent learnt clauses and equality repairs) must agree query-by-query
//! with a fresh [`EprCheck`] built from scratch for each query.
//!
//! Queries are drawn from a fixed sentence pool via a deterministic bitmask
//! walk, as in `prop.rs`: the low half of the mask selects the persistent
//! frame, the high half selects the sequence of one-shot violations.

use ivy_epr::{EprCheck, EprOutcome, EprSession};
use ivy_fol::{parse_formula, Formula, Signature};

fn signature() -> Signature {
    let mut sig = Signature::new();
    sig.add_sort("s").unwrap();
    sig.add_sort("t").unwrap();
    sig.add_relation("r", ["s"]).unwrap();
    sig.add_relation("q", ["s", "t"]).unwrap();
    sig.add_function("f", ["s"], "t").unwrap();
    sig.add_constant("a", "s").unwrap();
    sig.add_constant("b", "s").unwrap();
    sig
}

/// Frame candidates: hypotheses that persist across a session's queries.
fn frame_pool() -> Vec<Formula> {
    [
        "r(a)",
        "a ~= b",
        "forall X:s. r(X) -> q(X, f(X))",
        "forall X:s, Y:s. f(X) = f(Y) -> X = Y",
        "forall X:s. q(X, f(X))",
        "f(a) = f(b)",
        "exists X:s, Y:s. X ~= Y",
        "forall X:s. r(X)",
    ]
    .iter()
    .map(|s| parse_formula(s).unwrap())
    .collect()
}

/// Violation candidates: asserted one at a time, retired after their query.
/// Several introduce Skolem constants, exercising universe growth between
/// queries of the same session.
fn violation_pool() -> Vec<Formula> {
    [
        "~r(b)",
        "a = b",
        "exists X:s. ~r(X)",
        "exists X:s. r(X) & X ~= a",
        "forall X:s, Y:s. X = Y",
        "f(a) ~= f(b)",
        "exists X:s, Y:t. q(X, Y) & Y ~= f(X)",
        "forall X:s, Y:t. ~q(X, Y)",
    ]
    .iter()
    .map(|s| parse_formula(s).unwrap())
    .collect()
}

/// The reference: one fresh end-to-end check of `frame ∪ {violation}`.
fn fresh_verdict(frame: &[Formula], violation: Option<&Formula>) -> EprOutcome {
    let mut q = EprCheck::new(&signature()).unwrap();
    for (i, f) in frame.iter().enumerate() {
        q.assert_labeled(format!("h{i}"), f).unwrap();
    }
    if let Some(v) = violation {
        q.assert_labeled("violation", v).unwrap();
    }
    q.check().unwrap()
}

#[test]
fn session_agrees_with_fresh_check_per_query() {
    let frames = frame_pool();
    let violations = violation_pool();
    for case in 0..96u32 {
        let mask = case.wrapping_mul(21139) % 65536;
        let frame: Vec<Formula> = frames
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| f.clone())
            .collect();
        let queries: Vec<Formula> = violations
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i + 8)) != 0)
            .map(|(_, f)| f.clone())
            .collect();

        let mut session = EprSession::new(&signature()).unwrap();
        for (i, f) in frame.iter().enumerate() {
            session.assert_labeled(format!("h{i}"), f).unwrap();
        }
        // The frame alone must agree with a fresh check of the frame.
        let base = session.check().unwrap();
        assert_eq!(
            base.is_sat(),
            fresh_verdict(&frame, None).is_sat(),
            "frame-only disagreement on mask {mask}"
        );
        for v in &queries {
            let group = session.assert_labeled("violation", v).unwrap();
            let incremental = session.check().unwrap();
            session.retire(group);
            let reference = fresh_verdict(&frame, Some(v));
            assert_eq!(
                incremental.is_sat(),
                reference.is_sat(),
                "session and fresh check disagree on mask {mask}, violation `{v}`"
            );
            match incremental {
                EprOutcome::Sat(model) => {
                    // The session's model satisfies the frame and the
                    // violation (evaluated independently).
                    for f in frame.iter().chain([v]) {
                        assert!(
                            model.structure.eval_closed(f).unwrap(),
                            "model violates `{f}` on mask {mask}; structure: {}",
                            model.structure
                        );
                    }
                }
                EprOutcome::Unsat(core) => {
                    // Core labels must refer to live groups, and the core
                    // itself must be unsatisfiable per a fresh check.
                    let core_frame: Vec<Formula> = core
                        .iter()
                        .filter_map(|label| {
                            label
                                .strip_prefix('h')
                                .and_then(|n| n.parse::<usize>().ok())
                                .map(|n| frame[n].clone())
                        })
                        .collect();
                    let core_violation = core.iter().any(|l| l == "violation").then_some(v);
                    assert!(
                        !fresh_verdict(&core_frame, core_violation).is_sat(),
                        "unsat core {core:?} is satisfiable on mask {mask}"
                    );
                }
                EprOutcome::Unknown(r) => {
                    panic!("unbudgeted query returned unknown ({r}) on mask {mask}")
                }
            }
        }
        // After retiring every violation the frame verdict is unchanged.
        let after = session.check().unwrap();
        assert_eq!(
            after.is_sat(),
            base.is_sat(),
            "retiring violations changed the frame verdict on mask {mask}"
        );
    }
}
