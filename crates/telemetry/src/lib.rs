//! Observability and resource governance for the Ivy pipeline.
//!
//! Three pieces, all dependency-free:
//!
//! * **Timing spans and counters** — [`Span::enter`] measures a phase
//!   (`"wp"`, `"ground"`, `"sat"`, ...) on the monotonic clock and folds
//!   the elapsed time into a process-global, thread-safe registry, so
//!   the parallel query fan-out aggregates correctly. Recording is off
//!   by default and gated by a single atomic load, so the instrumented
//!   hot paths pay one branch when profiling is disabled.
//!
//! * **[`QueryReport`]** — a merged, machine-readable account of one or
//!   more solver queries: wall time by phase, grounding sizes, clause /
//!   conflict / restart / propagation counts, and cache hit rates. It
//!   serializes itself to JSON by hand (`to_json`); the schema is
//!   documented in DESIGN.md §4e.
//!
//! * **[`Budget`]** — a deadline plus conflict and instantiation caps
//!   threaded through the EPR layer and the verification loops.
//!   Exceeding the deadline degrades gracefully: queries report
//!   `Unknown(`[`StopReason`]`)` with partial statistics instead of
//!   running unbounded or panicking.
//!
//! * **Per-thread rollup scopes** — [`local_rollup_begin`] collects an
//!   [`OracleRollup`] for just the work recorded on the current thread
//!   while the scope is active. This is what lets a multi-tenant server
//!   report per-request telemetry while many requests share one process
//!   (the global registry cannot distinguish them).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global span/counter registry
// ---------------------------------------------------------------------------

/// Aggregated wall time and call count for one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    pub nanos: u128,
    pub calls: u64,
}

impl PhaseStat {
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1.0e6
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PHASES: Mutex<Vec<(&'static str, PhaseStat)>> = Mutex::new(Vec::new());
static COUNTERS: Mutex<Vec<(&'static str, u64)>> = Mutex::new(Vec::new());

/// Turn global recording on or off. Disabled by default; spans and
/// counter bumps are no-ops (one atomic load) while disabled.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded phases and counters (recording state unchanged).
pub fn reset() {
    PHASES.lock().unwrap().clear();
    COUNTERS.lock().unwrap().clear();
}

/// Add `n` to the named global counter (no-op while disabled).
pub fn counter_add(name: &'static str, n: u64) {
    if n == 0 || !is_enabled() {
        return;
    }
    let mut table = COUNTERS.lock().unwrap();
    match table.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v += n,
        None => table.push((name, n)),
    }
}

/// Snapshot of every recorded phase, sorted by name.
pub fn phase_snapshot() -> Vec<(String, PhaseStat)> {
    let mut out: Vec<(String, PhaseStat)> = PHASES
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Snapshot of every recorded counter, sorted by name.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = COUNTERS
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// RAII timing span. [`Span::enter`] samples the monotonic clock; the
/// drop folds the elapsed time into the global registry under `phase`.
/// When recording is disabled the span holds no sample and the drop is
/// free.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    phase: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub fn enter(phase: &'static str) -> Span {
        let start = if is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span { phase, start }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos();
        let mut table = PHASES.lock().unwrap();
        match table.iter_mut().find(|(k, _)| *k == self.phase) {
            Some((_, stat)) => {
                stat.nanos += nanos;
                stat.calls += 1;
            }
            None => table.push((self.phase, PhaseStat { nanos, calls: 1 })),
        }
    }
}

// ---------------------------------------------------------------------------
// Budgets and stop reasons
// ---------------------------------------------------------------------------

/// Why a query stopped without reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The conflict budget was exhausted.
    ConflictBudget,
    /// The cumulative ground-instance budget was exhausted.
    InstanceBudget,
    /// Lazy equality repair hit its round limit.
    RepairLimit,
    /// A counterexample survived projection to the program vocabulary
    /// without falsifying any candidate, so candidate elimination cannot
    /// make progress (e.g. the projection lost the interpretations that
    /// witnessed the violation).
    ProjectionLoss,
    /// The instantiation depth bound was load-bearing: the ground universe
    /// (or the instance set over it) was truncated, so a SAT answer may be
    /// an artifact of the bound rather than a genuine model.
    BoundReached,
}

impl StopReason {
    /// Stable lower-case tag used in JSON output.
    pub fn tag(&self) -> &'static str {
        match self {
            StopReason::DeadlineExceeded => "deadline",
            StopReason::ConflictBudget => "conflicts",
            StopReason::InstanceBudget => "instances",
            StopReason::RepairLimit => "repair_limit",
            StopReason::ProjectionLoss => "projection_loss",
            StopReason::BoundReached => "bound",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            StopReason::ConflictBudget => write!(f, "conflict budget exhausted"),
            StopReason::InstanceBudget => write!(f, "instantiation budget exhausted"),
            StopReason::RepairLimit => write!(f, "equality repair round limit reached"),
            StopReason::ProjectionLoss => {
                write!(f, "counterexample projection falsified no candidate")
            }
            StopReason::BoundReached => write!(f, "instantiation depth bound reached"),
        }
    }
}

/// Resource limits for a query (or a whole verification run). All
/// limits are optional; [`Budget::UNLIMITED`] imposes none.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cap on SAT conflicts per query.
    pub max_conflicts: Option<u64>,
    /// Cap on cumulative ground instances per session.
    pub max_instances: Option<u64>,
}

impl Budget {
    pub const UNLIMITED: Budget = Budget {
        deadline: None,
        max_conflicts: None,
        max_instances: None,
    };

    /// A budget whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + timeout),
            ..Budget::UNLIMITED
        }
    }

    pub fn with_max_conflicts(mut self, max_conflicts: u64) -> Budget {
        self.max_conflicts = Some(max_conflicts);
        self
    }

    pub fn with_max_instances(mut self, max_instances: u64) -> Budget {
        self.max_instances = Some(max_instances);
        self
    }

    /// True if the deadline (if any) has already passed.
    pub fn expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }
}

// ---------------------------------------------------------------------------
// QueryReport
// ---------------------------------------------------------------------------

/// Machine-readable account of one query (or the merge of many).
///
/// Built by the single stats builder in `ivy-epr` so the per-check and
/// per-session counters cannot diverge, then optionally merged across
/// queries by callers. `to_json` emits the `ivy-profile-v1` object
/// documented in DESIGN.md §4e.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryReport {
    /// Number of queries merged into this report.
    pub queries: u64,
    /// Outcome tag of the *last* query: `sat`, `unsat`, or `unknown`.
    pub outcome: String,
    /// Why the last query stopped early, if it did.
    pub stop: Option<StopReason>,
    /// Total wall time across merged queries.
    pub wall_nanos: u128,
    // Grounding.
    /// Herbrand universe size (max across merged queries).
    pub universe: u64,
    /// Cumulative ground instances.
    pub instances: u64,
    pub equality_rounds: u64,
    pub equality_clauses: u64,
    // SAT solver.
    pub sat_vars: u64,
    pub sat_clauses: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub restarts: u64,
    pub deleted_clauses: u64,
    // Caches.
    pub intern_hits: u64,
    pub intern_misses: u64,
    pub atom_cache_hits: u64,
    pub atom_cache_misses: u64,
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl QueryReport {
    pub fn new() -> QueryReport {
        QueryReport::default()
    }

    /// Fold another report into this one: counters add, universe takes
    /// the max, outcome/stop take the other's (latest wins).
    pub fn merge(&mut self, other: &QueryReport) {
        self.queries += other.queries.max(1);
        if !other.outcome.is_empty() {
            self.outcome = other.outcome.clone();
        }
        if other.stop.is_some() {
            self.stop = other.stop;
        }
        self.wall_nanos += other.wall_nanos;
        self.universe = self.universe.max(other.universe);
        self.instances += other.instances;
        self.equality_rounds += other.equality_rounds;
        self.equality_clauses += other.equality_clauses;
        self.sat_vars = self.sat_vars.max(other.sat_vars);
        self.sat_clauses = self.sat_clauses.max(other.sat_clauses);
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.deleted_clauses += other.deleted_clauses;
        self.intern_hits = self.intern_hits.max(other.intern_hits);
        self.intern_misses = self.intern_misses.max(other.intern_misses);
        self.atom_cache_hits += other.atom_cache_hits;
        self.atom_cache_misses += other.atom_cache_misses;
    }

    /// Rebuilds a merged report from the global counter registry — the
    /// publication target of the per-query builder in `ivy-epr`. Front
    /// ends that drive whole verification loops (and never see the
    /// individual per-query reports) use this to recover the cumulative
    /// numbers; outcome, wall time, and cache-layer stats not published
    /// as counters are left for the caller to fill in.
    pub fn from_global_counters() -> QueryReport {
        let counters = counter_snapshot();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        QueryReport {
            queries: get("epr.queries"),
            instances: get("epr.instances"),
            decisions: get("sat.decisions"),
            propagations: get("sat.propagations"),
            conflicts: get("sat.conflicts"),
            restarts: get("sat.restarts"),
            deleted_clauses: get("sat.deleted_clauses"),
            atom_cache_hits: get("cache.atom_hits"),
            atom_cache_misses: get("cache.atom_misses"),
            ..QueryReport::default()
        }
    }

    pub fn intern_hit_rate(&self) -> f64 {
        rate(self.intern_hits, self.intern_misses)
    }

    pub fn atom_cache_hit_rate(&self) -> f64 {
        rate(self.atom_cache_hits, self.atom_cache_misses)
    }

    /// Serialize as a standalone `ivy-profile-v1` JSON object,
    /// including the current global phase and counter snapshots.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Like [`QueryReport::to_json`] with extra top-level string
    /// fields (e.g. `protocol`, `command`, `verdict`) prepended.
    pub fn to_json_with(&self, extra: &[(&str, &str)]) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"ivy-profile-v1\"");
        for (k, v) in extra {
            out.push_str(",\n  ");
            json_str(&mut out, k);
            out.push_str(": ");
            json_str(&mut out, v);
        }
        out.push_str(&format!(
            ",\n  \"queries\": {},\n  \"outcome\": ",
            self.queries
        ));
        json_str(&mut out, &self.outcome);
        out.push_str(",\n  \"stop\": ");
        match self.stop {
            Some(r) => json_str(&mut out, r.tag()),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\n  \"wall_ms\": {:.3}",
            self.wall_nanos as f64 / 1.0e6
        ));
        out.push_str(",\n  \"phases\": [");
        let phases = phase_snapshot();
        for (i, (name, stat)) in phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"phase\": ");
            json_str(&mut out, name);
            out.push_str(&format!(
                ", \"calls\": {}, \"ms\": {:.3}}}",
                stat.calls,
                stat.millis()
            ));
        }
        if !phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        out.push_str(",\n  \"counters\": {");
        let counters = counter_snapshot();
        for (i, (name, value)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        if !counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');
        out.push_str(&format!(
            ",\n  \"grounding\": {{\"universe\": {}, \"instances\": {}, \
             \"equality_rounds\": {}, \"equality_clauses\": {}}}",
            self.universe, self.instances, self.equality_rounds, self.equality_clauses
        ));
        out.push_str(&format!(
            ",\n  \"sat\": {{\"vars\": {}, \"clauses\": {}, \"decisions\": {}, \
             \"propagations\": {}, \"conflicts\": {}, \"restarts\": {}, \
             \"deleted_clauses\": {}}}",
            self.sat_vars,
            self.sat_clauses,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.deleted_clauses
        ));
        out.push_str(&format!(
            ",\n  \"caches\": {{\"intern_hits\": {}, \"intern_misses\": {}, \
             \"intern_hit_rate\": {:.4}, \"atom_hits\": {}, \"atom_misses\": {}, \
             \"atom_hit_rate\": {:.4}}}",
            self.intern_hits,
            self.intern_misses,
            self.intern_hit_rate(),
            self.atom_cache_hits,
            self.atom_cache_misses,
            self.atom_cache_hit_rate()
        ));
        out.push_str("\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// OracleRollup
// ---------------------------------------------------------------------------

/// Aggregated telemetry of one solver *oracle*: every query the oracle
/// answered (merged into one [`QueryReport`]) plus the frame-cache
/// behaviour that the per-query reports cannot see — how often a
/// grounded session was reused versus rebuilt from scratch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OracleRollup {
    /// Merge of every per-query report the oracle produced.
    pub report: QueryReport,
    /// Session checkouts served from the frame cache.
    pub frame_hits: u64,
    /// Session checkouts that had to ground a fresh session.
    pub frame_misses: u64,
    /// Sessions grounded over the oracle's lifetime (misses + rebuilds
    /// after an exhausted session was discarded).
    pub sessions_built: u64,
}

impl OracleRollup {
    pub fn new() -> OracleRollup {
        OracleRollup::default()
    }

    /// Fold one query's report into the rollup.
    pub fn record_query(&mut self, report: &QueryReport) {
        self.report.merge(report);
    }

    /// Record one session checkout: `hit` when an already-grounded
    /// session was reused for the frame.
    pub fn record_checkout(&mut self, hit: bool) {
        if hit {
            self.frame_hits += 1;
        } else {
            self.frame_misses += 1;
        }
    }

    /// Record that a session was grounded from scratch.
    pub fn record_session_built(&mut self) {
        self.sessions_built += 1;
    }

    /// Fraction of checkouts served from the frame cache.
    pub fn frame_hit_rate(&self) -> f64 {
        rate(self.frame_hits, self.frame_misses)
    }

    /// Serialize the rollup as a small standalone JSON object (not the
    /// full `ivy-profile-v1` schema; use `report.to_json` for that).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queries\": {}, \"wall_ms\": {:.3}, \"frame_hits\": {}, \
             \"frame_misses\": {}, \"frame_hit_rate\": {:.4}, \
             \"sessions_built\": {}}}",
            self.report.queries,
            self.report.wall_nanos as f64 / 1.0e6,
            self.frame_hits,
            self.frame_misses,
            self.frame_hit_rate(),
            self.sessions_built
        )
    }
}

// ---------------------------------------------------------------------------
// Per-thread rollup scopes
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of active per-thread rollup scopes (usually 0 or 1 deep).
    static LOCAL_ROLLUPS: std::cell::RefCell<Vec<OracleRollup>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A per-thread telemetry collection scope (see [`local_rollup_begin`]).
///
/// Not `Send`: the scope must finish on the thread that began it.
#[must_use = "a scope collects until finished; an unfinished scope is discarded on drop"]
pub struct LocalRollupScope {
    finished: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Begins collecting an [`OracleRollup`] for the *current thread*: until
/// the returned scope is [`finished`](LocalRollupScope::finish), every
/// query report, session checkout, and session build recorded on this
/// thread via [`local_record_query`] / [`local_record_checkout`] /
/// [`local_record_session_built`] is folded into the scope's rollup.
///
/// This is how a server attributes solver work to one request without
/// touching the process-global registry: the request handler wraps the
/// engine call in a scope and embeds the finished rollup in the response.
/// Work an engine fans out to *other* threads (the parallel query
/// strategy) is not captured; the session-backed strategies — the ones a
/// server shares — run on the calling thread and are.
pub fn local_rollup_begin() -> LocalRollupScope {
    LOCAL_ROLLUPS.with(|s| s.borrow_mut().push(OracleRollup::new()));
    LocalRollupScope {
        finished: false,
        _not_send: std::marker::PhantomData,
    }
}

impl LocalRollupScope {
    /// Ends the scope and returns everything recorded during it.
    pub fn finish(mut self) -> OracleRollup {
        self.finished = true;
        LOCAL_ROLLUPS.with(|s| s.borrow_mut().pop().expect("scope was begun"))
    }
}

impl Drop for LocalRollupScope {
    fn drop(&mut self) {
        if !self.finished {
            LOCAL_ROLLUPS.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Folds `f` into the innermost active scope on this thread, if any.
fn with_local_scope(f: impl FnOnce(&mut OracleRollup)) {
    LOCAL_ROLLUPS.with(|s| {
        if let Some(rollup) = s.borrow_mut().last_mut() {
            f(rollup);
        }
    });
}

/// Records one query report into the current thread's scope (no-op
/// without an active scope). Called by the solver oracle next to its own
/// rollup accounting.
pub fn local_record_query(report: &QueryReport) {
    with_local_scope(|r| r.record_query(report));
}

/// Records one session checkout into the current thread's scope.
pub fn local_record_checkout(hit: bool) {
    with_local_scope(|r| r.record_checkout(hit));
}

/// Records one session build into the current thread's scope.
pub fn local_record_session_built() {
    with_local_scope(|r| r.record_session_built());
}

/// Append `s` as a JSON string literal (quotes, backslashes, and
/// control characters escaped).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test: the registry and enabled flag are global, so
    // splitting this into separate #[test] fns would race under the
    // parallel test runner.
    #[test]
    fn global_registry_lifecycle() {
        set_enabled(false);
        reset();
        {
            let _s = Span::enter("test.disabled");
        }
        counter_add("test.disabled.counter", 3);
        assert!(phase_snapshot().is_empty());
        assert!(counter_snapshot().is_empty());

        set_enabled(true);
        {
            let _s = Span::enter("test.phase");
        }
        {
            let _s = Span::enter("test.phase");
        }
        counter_add("test.counter", 2);
        counter_add("test.counter", 5);
        let phases = phase_snapshot();
        let phase = phases.iter().find(|(n, _)| n == "test.phase").unwrap();
        assert_eq!(phase.1.calls, 2);
        let counters = counter_snapshot();
        let counter = counters.iter().find(|(n, _)| n == "test.counter").unwrap();
        assert_eq!(counter.1, 7);
        set_enabled(false);
        reset();
    }

    #[test]
    fn budget_expiry() {
        assert!(!Budget::UNLIMITED.expired());
        let b = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::UNLIMITED
        };
        assert!(b.expired());
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(!b.expired());
    }

    #[test]
    fn report_merge_and_json() {
        let mut a = QueryReport {
            queries: 1,
            outcome: "unsat".into(),
            universe: 10,
            instances: 100,
            conflicts: 5,
            intern_hits: 3,
            intern_misses: 1,
            ..QueryReport::default()
        };
        let b = QueryReport {
            queries: 1,
            outcome: "unknown".into(),
            stop: Some(StopReason::DeadlineExceeded),
            universe: 7,
            instances: 50,
            conflicts: 2,
            ..QueryReport::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.outcome, "unknown");
        assert_eq!(a.stop, Some(StopReason::DeadlineExceeded));
        assert_eq!(a.universe, 10);
        assert_eq!(a.instances, 150);
        assert_eq!(a.conflicts, 7);
        let json = a.to_json_with(&[("protocol", "leader")]);
        assert!(json.contains("\"schema\": \"ivy-profile-v1\""));
        assert!(json.contains("\"protocol\": \"leader\""));
        assert!(json.contains("\"stop\": \"deadline\""));
        assert!(json.contains("\"outcome\": \"unknown\""));
    }

    #[test]
    fn oracle_rollup_accounting() {
        let mut r = OracleRollup::new();
        assert_eq!(r.frame_hit_rate(), 0.0);
        r.record_checkout(false);
        r.record_session_built();
        r.record_checkout(true);
        r.record_checkout(true);
        r.record_query(&QueryReport {
            queries: 1,
            outcome: "unsat".into(),
            instances: 40,
            ..QueryReport::default()
        });
        r.record_query(&QueryReport {
            queries: 1,
            outcome: "sat".into(),
            instances: 2,
            ..QueryReport::default()
        });
        assert_eq!(r.frame_hits, 2);
        assert_eq!(r.frame_misses, 1);
        assert_eq!(r.sessions_built, 1);
        assert!((r.frame_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.report.queries, 2);
        assert_eq!(r.report.instances, 42);
        let json = r.to_json();
        assert!(json.contains("\"frame_hits\": 2"));
        assert!(json.contains("\"sessions_built\": 1"));
    }

    #[test]
    fn local_rollup_scope_collects_thread_locally() {
        // No scope: records are dropped silently.
        local_record_checkout(true);
        local_record_session_built();

        let scope = local_rollup_begin();
        local_record_checkout(true);
        local_record_checkout(false);
        local_record_session_built();
        local_record_query(&QueryReport {
            queries: 1,
            instances: 7,
            ..QueryReport::default()
        });
        // Another thread's records do not leak into this scope.
        std::thread::spawn(|| {
            local_record_checkout(true);
            local_record_query(&QueryReport {
                queries: 1,
                ..QueryReport::default()
            });
        })
        .join()
        .unwrap();
        let rollup = scope.finish();
        assert_eq!(rollup.frame_hits, 1);
        assert_eq!(rollup.frame_misses, 1);
        assert_eq!(rollup.sessions_built, 1);
        assert_eq!(rollup.report.queries, 1);
        assert_eq!(rollup.report.instances, 7);

        // Nested scopes: the inner scope shadows the outer one.
        let outer = local_rollup_begin();
        let inner = local_rollup_begin();
        local_record_checkout(true);
        assert_eq!(inner.finish().frame_hits, 1);
        local_record_checkout(false);
        let outer = outer.finish();
        assert_eq!(outer.frame_hits, 0);
        assert_eq!(outer.frame_misses, 1);

        // An unfinished scope unwinds cleanly on drop.
        {
            let _abandoned = local_rollup_begin();
        }
        local_record_checkout(true); // no active scope: dropped, no panic
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut s = String::new();
        json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
